// Package scenario assembles end-to-end topologies for experiments and
// examples: server(s) — WAN — access point(s) (optionally running Zhuge,
// ABC or FastAck) — wireless downlink — client(s), with the uplink
// returning over a contended wireless hop and each AP's Ethernet uplink.
// Paths are built on the internal/topo graph, either declaratively from a
// Spec (multi-AP, stations, scheduled handovers) or through the classic
// single-AP NewPath options. Flow factories attach RTP/GCC video calls,
// TCP video streams and bulk-transfer competitors, and collect the
// paper's metrics.
package scenario

import (
	"fmt"
	"time"

	"github.com/zhuge-project/zhuge/internal/baseline"
	"github.com/zhuge-project/zhuge/internal/core"
	"github.com/zhuge-project/zhuge/internal/netem"
	"github.com/zhuge-project/zhuge/internal/obs"
	"github.com/zhuge-project/zhuge/internal/sim"
	"github.com/zhuge-project/zhuge/internal/topo"
	"github.com/zhuge-project/zhuge/internal/trace"
	"github.com/zhuge-project/zhuge/internal/wireless"
)

// Solution selects the AP-side mechanism under test.
type Solution int

// AP solutions.
const (
	// SolutionNone is a plain AP (the FIFO/CoDel baselines).
	SolutionNone Solution = iota
	// SolutionZhuge runs the Fortune Teller + Feedback Updater.
	SolutionZhuge
	// SolutionFastAck counterfeits TCP ACKs at 802.11 delivery.
	SolutionFastAck
	// SolutionABC marks accelerate/brake and requires ABC senders.
	SolutionABC
)

func (s Solution) String() string {
	switch s {
	case SolutionNone:
		return "none"
	case SolutionZhuge:
		return "zhuge"
	case SolutionFastAck:
		return "fastack"
	case SolutionABC:
		return "abc"
	default:
		return "unknown"
	}
}

// Options configures a classic single-AP path (the NewPath surface).
type Options struct {
	Seed     int64
	Trace    *trace.Trace  // downlink available bandwidth
	WANRTT   time.Duration // server<->AP round trip; default from trace
	Qdisc    string        // "fifo" (default), "codel", "fqcodel"
	QueueCap int           // bytes; default queue.DefaultFIFOLimit

	Interferers int // stations contending on the channel (Figure 17)

	Solution Solution
	FTConfig core.FortuneTellerConfig // Zhuge estimator variants
	OOB      core.OOBOptions          // Zhuge out-of-band ablation variants

	// MCSScale optionally scales the downlink PHY rate over time (the
	// "mcs" testbed scenario of Figure 18).
	MCSScale func(at sim.Time) float64

	// Obs optionally attaches the observability layer (tracer, metrics
	// registry, prediction-error accounter) to every component of the
	// path. Nil keeps the datapath on its zero-overhead fast path.
	Obs *obs.Obs
}

// Spec converts the single-AP options into their declarative form.
func (o Options) Spec() Spec {
	return Spec{
		Seed: o.Seed, WANRTT: o.WANRTT, Obs: o.Obs,
		APs: []APSpec{{
			Name: "ap0", Trace: o.Trace, Qdisc: o.Qdisc,
			QueueCap: o.QueueCap, Interferers: o.Interferers,
			Solution: o.Solution, FTConfig: o.FTConfig, OOB: o.OOB,
			MCSScale: o.MCSScale,
		}},
	}
}

// Path is an assembled topology ready for flows.
type Path struct {
	S    *sim.Simulator
	Opts Options // the first AP's configuration (single-AP compatibility)
	Spec Spec

	// G is the underlying topology graph.
	G *topo.Graph

	// APs lists every access point of the path; the fields below expose
	// the first one, the surface single-AP experiments use.
	APs      []*PathAP
	Downlink *wireless.Link
	Uplink   *wireless.Link
	AP       *core.AP
	FastAck  *baseline.FastAck
	ABC      *baseline.ABCRouter
	Channel  *wireless.Channel

	// Flows holds the handles of Spec-declared flows, in declaration
	// order.
	Flows []*BuiltFlow

	clientDemux *topo.Demux
	serverDemux *topo.Demux
	wanDown     *topo.Wire       // server -> AP WAN segment
	wanRouter   *topo.RouterNode // behind wanDown: flow -> AP/station entry
	clientOut   *topo.RouterNode // client uplink -> associated AP's radio

	stations    map[string]*topo.Station
	defaultSta  *topo.Station
	byTopo      map[*topo.AP]*PathAP
	flowStation map[netem.FlowKey]*topo.Station

	stationN int
	nextPort uint16
}

// NewPath assembles the classic single-AP topology.
func NewPath(o Options) *Path {
	if o.Trace == nil {
		panic("scenario: Options.Trace is required")
	}
	return o.Spec().Build()
}

// AddStation attaches another wireless client (its own per-station queue
// at the first AP) contending on the same channel, and routes the given
// downlink flows to it. Competing traffic to other stations costs the
// primary flow airtime, not queue space — how 802.11 competition actually
// behaves.
func (p *Path) AddStation(flows ...netem.FlowKey) *wireless.Link {
	p.stationN++
	label := fmt.Sprintf("station%d", p.stationN)
	st := topo.NewStation(p.G, topo.StationConfig{
		Name:     label,
		OwnQueue: true,
		QueueCap: p.Opts.QueueCap,
		Label:    label,
		Obs:      p.Spec.Obs,
	}, p.APs[0].Topo, p.clientDemux)
	p.G.Add(st)
	p.stations[label] = st
	for _, f := range flows {
		p.RouteToStation(f, st.Link())
	}
	return st.Link()
}

// RouteToStation binds a downlink flow to an existing secondary station.
func (p *Path) RouteToStation(flow netem.FlowKey, st *wireless.Link) {
	p.wanRouter.Route(flow, st)
}

// NewFlowKey allocates a fresh downlink 5-tuple for a flow. Inside a
// sharded decomposition the cell index lands in the third IP octet, so no
// two cells can mint the same key (and per-flow RNG labels, which embed
// the key, stay cell-unique). Cell 0 — and every standalone build — keeps
// the classic addresses.
func (p *Path) NewFlowKey() netem.FlowKey {
	p.nextPort++
	off := uint32(p.Spec.Cell) << 8
	return netem.FlowKey{
		SrcIP: 0x0a000001 + off, DstIP: 0xc0a80002 + off,
		SrcPort: p.nextPort, DstPort: p.nextPort, Proto: 17,
	}
}

// RegisterClient binds the client-side receiver for a downlink flow.
func (p *Path) RegisterClient(flow netem.FlowKey, r netem.Receiver) {
	p.clientDemux.Register(flow, r)
}

// RegisterServer binds the server-side receiver for a downlink flow (it
// receives the flow's uplink/feedback packets).
func (p *Path) RegisterServer(flow netem.FlowKey, r netem.Receiver) {
	p.serverDemux.Register(flow, r)
}

// AddDeliveryTap registers a function invoked when any downlink packet is
// delivered over the air to its client, on any AP or station link.
func (p *Path) AddDeliveryTap(tap func(p *netem.Packet)) {
	p.clientDemux.AddTap(tap)
}

// bindFlow attaches a flow to the station carrying it and routes both
// directions there. Flows on the primary station ride the routers'
// default routes.
func (p *Path) bindFlow(flow netem.FlowKey, st *topo.Station) {
	st.AddFlow(flow)
	p.flowStation[flow] = st
	if st == p.defaultSta {
		return
	}
	p.wanRouter.Route(flow, st.DownIn())
	p.clientOut.Route(flow.Reverse(), st.AP().Uplink)
}

// apOf returns the AP bundle a station is currently associated with.
func (p *Path) apOf(st *topo.Station) *PathAP {
	pa := p.byTopo[st.AP()]
	if pa == nil {
		panic("scenario: station associated with a foreign AP")
	}
	return pa
}

// ServerOut returns the receiver a server writes downlink packets into.
func (p *Path) ServerOut() netem.Receiver { return p.wanDown.Link() }

// WANDownLink exposes the server→AP WAN segment's wired link; the chaos
// latency-spike injector adds extra delay there.
func (p *Path) WANDownLink() *netem.Link { return p.wanDown.Link() }

// ClientOut returns the receiver a client writes uplink packets into.
func (p *Path) ClientOut() netem.Receiver { return p.clientOut.Router() }

// ReturnBase estimates the stable reverse-path latency through the first
// AP, used to turn one-way data delays into network RTTs for metrics: the
// AP's wired uplink (half the WAN RTT) plus the expected wait for an
// in-flight downlink TXOP — half the aggregate-airtime limit — before the
// uplink ACK's own transmission.
func (p *Path) ReturnBase() time.Duration {
	return p.apReturnBase(p.APs[0])
}

func (p *Path) apReturnBase(pa *PathAP) time.Duration {
	return pa.WANUp.Link().Delay() + pa.Topo.Downlink.Config().MaxAggAirtime/2
}

// FlowReturnBase is ReturnBase through the AP currently serving the
// flow's station — after a handover the return path crosses the new AP's
// wired uplink.
func (p *Path) FlowReturnBase(flow netem.FlowKey) time.Duration {
	if st, ok := p.flowStation[flow]; ok {
		return p.apReturnBase(p.apOf(st))
	}
	return p.ReturnBase()
}

// Run executes the simulation up to virtual time d. It may be called
// repeatedly with increasing times to observe intermediate state.
func (p *Path) Run(d time.Duration) {
	p.S.RunUntil(d)
}

// Package tcpsim implements a simulation TCP: a byte-stream sender with
// pluggable congestion control (internal/cca), cumulative acknowledgements,
// duplicate-ACK fast retransmit, retransmission timeouts with exponential
// backoff and RFC 6298 RTT estimation, and a receiver with out-of-order
// reassembly and ABC mark echo. It models what the paper's TCP evaluation
// needs — CCA reaction dynamics over a lossy, delaying path — not full
// RFC 793 conformance (no handshake, no flow control window).
package tcpsim

import (
	"time"

	"github.com/zhuge-project/zhuge/internal/cca"
	"github.com/zhuge-project/zhuge/internal/netem"
	"github.com/zhuge-project/zhuge/internal/sim"
)

// Header overheads, matching common practice (IPv4 + TCP + timestamps).
const (
	dataOverhead = 52
	ackSize      = 64
)

// Segment is the payload of a simulated TCP data packet.
type Segment struct {
	Seq    uint64 // first byte offset
	Len    int
	SentAt sim.Time // send (or retransmit) timestamp, echoed by the receiver
}

// AckInfo is the payload of a simulated TCP ACK packet.
type AckInfo struct {
	Ack     uint64   // cumulative: next expected byte
	Echo    sim.Time // SentAt of the segment that triggered this ack
	ABCMark uint8
}

// Sender is the TCP sending endpoint.
type Sender struct {
	s    *sim.Simulator
	cc   cca.TCP
	out  netem.Receiver
	flow netem.FlowKey

	sndUna uint64
	sndNxt uint64
	appEnd uint64 // bytes the application has made available

	segs []Segment // in-flight segments ordered by Seq

	dupAcks   int
	recover   uint64 // end of fast-recovery: highest seq sent at loss time
	inRecover bool

	srtt, rttvar time.Duration
	rto          time.Duration
	rtoTimer     *sim.Timer
	rtoBackoff   int

	pacingNext sim.Time
	sendTimer  *sim.Timer

	// OnRTT, if set, receives every RTT sample (the paper's network-RTT
	// metric is measured at the sender, §7.2).
	OnRTT func(now sim.Time, rtt time.Duration)
	// OnDeliveredChange, if set, fires when sndUna advances; the video-
	// over-TCP layer uses it to detect frame completion at the receiver.
	OnAcked func(now sim.Time, upTo uint64)

	retransmits int
	timeouts    int
}

// NewSender builds a TCP sender for flow using controller cc, transmitting
// into out (the first hop toward the receiver).
func NewSender(s *sim.Simulator, flow netem.FlowKey, cc cca.TCP, out netem.Receiver) *Sender {
	return &Sender{s: s, cc: cc, out: out, flow: flow, rto: time.Second}
}

// CC returns the congestion controller (for experiment inspection).
func (t *Sender) CC() cca.TCP { return t.cc }

// Retransmits returns the cumulative retransmission count.
func (t *Sender) Retransmits() int { return t.retransmits }

// Timeouts returns the cumulative RTO count.
func (t *Sender) Timeouts() int { return t.timeouts }

// InFlight returns the number of unacknowledged bytes.
func (t *Sender) InFlight() int { return int(t.sndNxt - t.sndUna) }

// Acked returns the cumulative acknowledged byte count.
func (t *Sender) Acked() uint64 { return t.sndUna }

// Write makes n more application bytes available and tries to send.
func (t *Sender) Write(n int) {
	t.appEnd += uint64(n)
	t.trySend()
}

// Pending returns application bytes not yet transmitted.
func (t *Sender) Pending() int { return int(t.appEnd - t.sndNxt) }

func (t *Sender) trySend() {
	now := t.s.Now()
	if t.sendTimer != nil && !t.sendTimer.Stopped() {
		return // a paced send is already scheduled
	}
	for t.sndNxt < t.appEnd && t.InFlight() < t.cc.CWND() {
		if rate := t.cc.PacingRate(now); rate > 0 && t.pacingNext > now {
			// Pace: schedule the next send.
			t.sendTimer = t.s.At(t.pacingNext, func() {
				t.sendTimer = nil
				t.trySend()
			})
			return
		}
		n := int(t.appEnd - t.sndNxt)
		if n > cca.MSS {
			n = cca.MSS
		}
		t.sendSegment(Segment{Seq: t.sndNxt, Len: n, SentAt: now})
		t.sndNxt += uint64(n)
		if rate := t.cc.PacingRate(now); rate > 0 {
			gap := time.Duration(float64(n+dataOverhead) * 8 / rate * float64(time.Second))
			if t.pacingNext < now {
				t.pacingNext = now
			}
			t.pacingNext += gap
		}
	}
}

func (t *Sender) sendSegment(seg Segment) {
	t.insertSegment(seg)
	p := netem.NewPacket()
	*p = netem.Packet{
		Flow:    t.flow,
		Kind:    netem.KindData,
		Size:    seg.Len + dataOverhead,
		Seq:     seg.Seq,
		SentAt:  seg.SentAt,
		Payload: seg,
	}
	t.out.Receive(p)
	t.armRTO()
}

// insertSegment records an in-flight segment, replacing any same-seq entry
// (retransmissions refresh SentAt).
func (t *Sender) insertSegment(seg Segment) {
	for i := range t.segs {
		if t.segs[i].Seq == seg.Seq {
			t.segs[i] = seg
			return
		}
		if t.segs[i].Seq > seg.Seq {
			t.segs = append(t.segs, Segment{})
			copy(t.segs[i+1:], t.segs[i:])
			t.segs[i] = seg
			return
		}
	}
	t.segs = append(t.segs, seg)
}

func (t *Sender) armRTO() {
	if t.rtoTimer != nil {
		t.rtoTimer.Stop()
	}
	backoff := t.rto << t.rtoBackoff
	if backoff > time.Minute {
		backoff = time.Minute
	}
	t.rtoTimer = t.s.After(backoff, t.onRTO)
}

func (t *Sender) onRTO() {
	if t.sndUna >= t.sndNxt {
		return // nothing outstanding
	}
	t.timeouts++
	t.rtoBackoff++
	t.cc.OnRTO(t.s.Now())
	t.inRecover = false
	t.dupAcks = 0
	// Retransmit the first unacknowledged segment.
	t.retransmitFirst()
}

func (t *Sender) retransmitFirst() {
	now := t.s.Now()
	for _, seg := range t.segs {
		if seg.Seq >= t.sndUna {
			t.retransmits++
			t.sendSegment(Segment{Seq: seg.Seq, Len: seg.Len, SentAt: now})
			return
		}
	}
	// Segment list lost its head (should not happen); resend from sndUna.
	n := int(t.sndNxt - t.sndUna)
	if n > cca.MSS {
		n = cca.MSS
	}
	if n > 0 {
		t.retransmits++
		t.sendSegment(Segment{Seq: t.sndUna, Len: n, SentAt: now})
	}
}

// Receive implements netem.Receiver: ACK packets from the network.
func (t *Sender) Receive(p *netem.Packet) {
	ack, ok := p.Payload.(AckInfo)
	if !ok {
		return
	}
	now := t.s.Now()

	if ack.Ack > t.sndUna {
		newly := int(ack.Ack - t.sndUna)
		t.sndUna = ack.Ack
		t.dupAcks = 0
		t.rtoBackoff = 0
		t.dropAckedSegments()

		var rtt time.Duration
		if ack.Echo > 0 {
			rtt = now - ack.Echo
			t.updateRTO(rtt)
			if t.OnRTT != nil {
				t.OnRTT(now, rtt)
			}
		}
		if t.inRecover && ack.Ack >= t.recover {
			t.inRecover = false
		}
		t.cc.OnAck(cca.AckEvent{
			Now:        now,
			AckedBytes: newly,
			RTT:        rtt,
			InFlight:   t.InFlight(),
			ABCMark:    ack.ABCMark,
			AppLimited: t.Pending() == 0 && t.InFlight() < t.cc.CWND()*3/4,
		})
		if t.OnAcked != nil {
			t.OnAcked(now, t.sndUna)
		}
		if t.sndUna >= t.sndNxt {
			if t.rtoTimer != nil {
				t.rtoTimer.Stop()
			}
		} else {
			t.armRTO()
		}
	} else if ack.Ack == t.sndUna && t.sndNxt > t.sndUna {
		t.dupAcks++
		if t.dupAcks == 3 && !t.inRecover {
			t.inRecover = true
			t.recover = t.sndNxt
			t.cc.OnLoss(now)
			t.retransmitFirst()
		}
	}
	t.trySend()
}

func (t *Sender) dropAckedSegments() {
	i := 0
	for i < len(t.segs) && t.segs[i].Seq+uint64(t.segs[i].Len) <= t.sndUna {
		i++
	}
	if i > 0 {
		t.segs = append(t.segs[:0], t.segs[i:]...)
	}
}

// updateRTO implements RFC 6298 with a 200ms floor (Linux default).
func (t *Sender) updateRTO(rtt time.Duration) {
	if t.srtt == 0 {
		t.srtt = rtt
		t.rttvar = rtt / 2
	} else {
		d := t.srtt - rtt
		if d < 0 {
			d = -d
		}
		t.rttvar = (3*t.rttvar + d) / 4
		t.srtt = (7*t.srtt + rtt) / 8
	}
	t.rto = t.srtt + 4*t.rttvar
	if t.rto < 200*time.Millisecond {
		t.rto = 200 * time.Millisecond
	}
	if t.rto > time.Minute {
		t.rto = time.Minute
	}
}

// SRTT returns the smoothed RTT estimate.
func (t *Sender) SRTT() time.Duration { return t.srtt }

// Receiver is the TCP receiving endpoint: it reassembles the byte stream,
// acknowledges every data packet, and echoes ABC marks.
type Receiver struct {
	s    *sim.Simulator
	out  netem.Receiver // toward the sender
	flow netem.FlowKey  // the reverse (ack) flow key

	rcvNxt uint64
	ooo    map[uint64]Segment

	// OnDeliver, if set, fires as in-order bytes become available.
	OnDeliver func(now sim.Time, upTo uint64)

	// OnAck, if set, fires at every ACK departure. For baseline solutions
	// this is where the congestion feedback originates — the client end of
	// the long control loop — so the loop recorder taps it as both the
	// observation and the feedback-departure instant (they coincide: TCP
	// acknowledges each arrival immediately).
	OnAck func(now sim.Time)

	received int
}

// NewReceiver builds a receiver whose ACKs travel into out with ackFlow.
func NewReceiver(s *sim.Simulator, ackFlow netem.FlowKey, out netem.Receiver) *Receiver {
	return &Receiver{s: s, out: out, flow: ackFlow, ooo: make(map[uint64]Segment)}
}

// Delivered returns the next expected byte (total in-order bytes received).
func (r *Receiver) Delivered() uint64 { return r.rcvNxt }

// Receive implements netem.Receiver: data packets from the network.
func (r *Receiver) Receive(p *netem.Packet) {
	seg, ok := p.Payload.(Segment)
	if !ok {
		return
	}
	r.received++
	if seg.Seq == r.rcvNxt {
		r.rcvNxt += uint64(seg.Len)
		// Drain contiguous out-of-order segments.
		for {
			next, ok := r.ooo[r.rcvNxt]
			if !ok {
				break
			}
			delete(r.ooo, r.rcvNxt)
			r.rcvNxt += uint64(next.Len)
		}
		if r.OnDeliver != nil {
			r.OnDeliver(r.s.Now(), r.rcvNxt)
		}
	} else if seg.Seq > r.rcvNxt {
		r.ooo[seg.Seq] = seg
	}
	// Acknowledge every arrival (duplicate ACKs signal gaps).
	if r.OnAck != nil {
		r.OnAck(r.s.Now())
	}
	ack := netem.NewPacket()
	*ack = netem.Packet{
		Flow:    r.flow,
		Kind:    netem.KindAck,
		Size:    ackSize,
		Seq:     r.rcvNxt,
		SentAt:  r.s.Now(),
		Payload: AckInfo{Ack: r.rcvNxt, Echo: seg.SentAt, ABCMark: p.ABCMark},
	}
	r.out.Receive(ack)
}

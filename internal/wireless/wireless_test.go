package wireless

import (
	"testing"
	"time"

	"github.com/zhuge-project/zhuge/internal/netem"
	"github.com/zhuge-project/zhuge/internal/queue"
	"github.com/zhuge-project/zhuge/internal/sim"
)

type capture struct {
	pkts  []*netem.Packet
	times []sim.Time
	s     *sim.Simulator
}

func (c *capture) Receive(p *netem.Packet) {
	c.pkts = append(c.pkts, p)
	c.times = append(c.times, c.s.Now())
}

func fixedRate(bps float64) func(sim.Time) float64 {
	return func(sim.Time) float64 { return bps }
}

func newTestLink(s *sim.Simulator, cfg Config) (*Link, *capture) {
	dst := &capture{s: s}
	l := NewLink(s, cfg, queue.NewFIFO(0), dst, s.NewRand("wl"))
	return l, dst
}

func mkPkt(seq uint64, size int) *netem.Packet {
	return &netem.Packet{
		Flow: netem.FlowKey{SrcIP: 1, DstIP: 2, SrcPort: 10, DstPort: 20, Proto: 17},
		Size: size, Seq: seq, Kind: netem.KindData,
	}
}

func TestDeliversAllInOrder(t *testing.T) {
	s := sim.New(1)
	l, dst := newTestLink(s, Config{Rate: fixedRate(10e6)})
	for i := 0; i < 100; i++ {
		l.Receive(mkPkt(uint64(i), 1000))
	}
	s.Run()
	if len(dst.pkts) != 100 {
		t.Fatalf("delivered %d, want 100", len(dst.pkts))
	}
	for i, p := range dst.pkts {
		if p.Seq != uint64(i) {
			t.Fatalf("packet %d has seq %d", i, p.Seq)
		}
	}
}

func TestThroughputMatchesRate(t *testing.T) {
	s := sim.New(1)
	l, dst := newTestLink(s, Config{Rate: fixedRate(20e6)})
	// Saturate: 2500 x 1250B = 25 Mbit over a 20 Mbps link ~= 1.25s + overheads.
	for i := 0; i < 2500; i++ {
		l.Receive(mkPkt(uint64(i), 1250))
	}
	s.Run()
	last := dst.times[len(dst.times)-1]
	goodput := float64(len(dst.pkts)) * 1250 * 8 / last.Seconds()
	if goodput < 15e6 || goodput > 20e6 {
		t.Errorf("goodput %.1f Mbps, want within [15,20]", goodput/1e6)
	}
}

func TestAggregationBatchesDeliveries(t *testing.T) {
	s := sim.New(1)
	l, dst := newTestLink(s, Config{Rate: fixedRate(50e6)})
	for i := 0; i < 64; i++ {
		l.Receive(mkPkt(uint64(i), 1500))
	}
	s.Run()
	// Count distinct delivery instants; with aggregation there should be
	// far fewer instants than packets.
	instants := map[sim.Time]int{}
	for _, at := range dst.times {
		instants[at]++
	}
	if len(instants) >= 64 {
		t.Errorf("got %d delivery instants for 64 packets; aggregation absent", len(instants))
	}
	maxBatch := 0
	for _, n := range instants {
		if n > maxBatch {
			maxBatch = n
		}
	}
	if maxBatch < 2 {
		t.Errorf("max batch %d, want >= 2", maxBatch)
	}
}

func TestAirtimeCapLimitsBurstAtLowRate(t *testing.T) {
	s := sim.New(1)
	// At 1 Mbps a 4ms TXOP fits only ~500 bytes: bursts must be 1 packet.
	l, dst := newTestLink(s, Config{Rate: fixedRate(1e6)})
	for i := 0; i < 10; i++ {
		l.Receive(mkPkt(uint64(i), 1500))
	}
	s.Run()
	instants := map[sim.Time]int{}
	for _, at := range dst.times {
		instants[at]++
	}
	for at, n := range instants {
		if n > 2 {
			t.Errorf("burst of %d packets at %v; airtime cap should limit bursts at low rate", n, at)
		}
	}
}

func TestInterferersSlowDelivery(t *testing.T) {
	elapsed := func(interferers int) sim.Time {
		s := sim.New(1)
		l, dst := newTestLink(s, Config{Rate: fixedRate(20e6), Interferers: interferers})
		for i := 0; i < 500; i++ {
			l.Receive(mkPkt(uint64(i), 1250))
		}
		s.Run()
		return dst.times[len(dst.times)-1]
	}
	quiet := elapsed(0)
	noisy := elapsed(30)
	if noisy < quiet*2 {
		t.Errorf("30 interferers: %v vs quiet %v; want at least 2x slower", noisy, quiet)
	}
}

func TestRateDropSlowsDelivery(t *testing.T) {
	s := sim.New(1)
	rate := func(at sim.Time) float64 {
		if at < 500*time.Millisecond {
			return 30e6
		}
		return 3e6
	}
	l, dst := newTestLink(s, Config{Rate: rate})
	// Feed 2 Mbps-worth every 5ms for 2s.
	var seq uint64
	for at := time.Duration(0); at < 2*time.Second; at += 5 * time.Millisecond {
		at := at
		s.At(at, func() {
			l.Receive(mkPkt(seq, 1250))
			seq++
		})
	}
	s.Run()
	// All packets delivered (2 Mbps < 3 Mbps floor).
	if len(dst.pkts) != 400 {
		t.Fatalf("delivered %d, want 400", len(dst.pkts))
	}
	// Latency after the drop should exceed latency before.
	var before, after time.Duration
	var nb, na int
	for i, p := range dst.pkts {
		lat := dst.times[i] - p.EnqueuedAt
		if p.EnqueuedAt < 500*time.Millisecond {
			before += lat
			nb++
		} else {
			after += lat
			na++
		}
	}
	if nb == 0 || na == 0 {
		t.Fatal("missing samples")
	}
	if after/time.Duration(na) <= before/time.Duration(nb) {
		t.Errorf("mean latency after drop %v <= before %v", after/time.Duration(na), before/time.Duration(nb))
	}
}

type countingObserver struct {
	enq, deq, dropped int
}

func (c *countingObserver) OnEnqueue(_ sim.Time, _ *netem.Packet, accepted bool) {
	c.enq++
	if !accepted {
		c.dropped++
	}
}
func (c *countingObserver) OnDequeue(_ sim.Time, _ *netem.Packet) { c.deq++ }

func TestObserverSeesEvents(t *testing.T) {
	s := sim.New(1)
	obs := &countingObserver{}
	dst := &capture{s: s}
	l := NewLink(s, Config{Rate: fixedRate(10e6)}, queue.NewFIFO(5000), dst, s.NewRand("wl"))
	l.AddObserver(obs)
	for i := 0; i < 50; i++ {
		l.Receive(mkPkt(uint64(i), 1000))
	}
	s.Run()
	if obs.enq != 50 {
		t.Errorf("observer enqueues %d, want 50", obs.enq)
	}
	if obs.dropped == 0 {
		t.Error("5KB queue fed 50KB should drop")
	}
	if obs.deq != len(dst.pkts) {
		t.Errorf("observer dequeues %d != delivered %d", obs.deq, len(dst.pkts))
	}
	if l.Delivered() != len(dst.pkts) {
		t.Errorf("Delivered() %d != %d", l.Delivered(), len(dst.pkts))
	}
}

func TestMCSScaleReducesRate(t *testing.T) {
	run := func(scale float64) sim.Time {
		s := sim.New(1)
		cfg := Config{Rate: fixedRate(20e6), MCSScale: func(sim.Time) float64 { return scale }}
		l, dst := newTestLink(s, cfg)
		for i := 0; i < 200; i++ {
			l.Receive(mkPkt(uint64(i), 1250))
		}
		s.Run()
		return dst.times[len(dst.times)-1]
	}
	if full, half := run(1.0), run(0.5); half < full*3/2 {
		t.Errorf("half MCS took %v vs %v full; want ~2x", run(0.5), full)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() []sim.Time {
		s := sim.New(99)
		l, dst := newTestLink(s, Config{Rate: fixedRate(10e6), Interferers: 10})
		for i := 0; i < 100; i++ {
			l.Receive(mkPkt(uint64(i), 1000))
		}
		s.Run()
		return dst.times
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delivery %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

// Package liveap implements the userspace Zhuge AP over real UDP sockets:
// the production-shaped counterpart of the simulator datapath, mirroring
// the paper's OpenWrt packet-socket implementation (§7.1). It relays an
// RTP/RTCP session between a server and a wireless client, shapes the
// downlink to a configurable (optionally trace-driven) rate through a real
// queue, runs the Fortune Teller on wall-clock offsets, and rewrites
// feedback in in-band mode: recording transport-wide sequence numbers from
// real RTP header bytes, constructing real TWCC RTCP packets, and absorbing
// the client's own TWCC.
package liveap

import (
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/zhuge-project/zhuge/internal/core"
	"github.com/zhuge-project/zhuge/internal/netem"
	"github.com/zhuge-project/zhuge/internal/packet"
	"github.com/zhuge-project/zhuge/internal/queue"
	"github.com/zhuge-project/zhuge/internal/trace"
)

// Config parameterises the relay.
type Config struct {
	// MediaListen is the UDP address the server sends media to.
	MediaListen string
	// FeedbackListen is the UDP address the client sends RTCP to.
	FeedbackListen string
	// Client is where shaped media is forwarded.
	Client string
	// Server is where (rewritten) feedback is forwarded.
	Server string

	// Rate shapes the downlink, bits per second. Ignored if Trace is set.
	Rate float64
	// Trace optionally drives a time-varying downlink rate.
	Trace *trace.Trace

	// QueueLimit bounds the downlink queue in bytes (default 256 KiB).
	QueueLimit int
	// Zhuge enables the Fortune Teller + in-band Feedback Updater;
	// disabled, the relay is a plain shaped AP for A/B comparison.
	Zhuge bool
	// FeedbackEvery is the TWCC construction interval (default 40ms).
	FeedbackEvery time.Duration
}

// Stats is a snapshot of relay counters.
type Stats struct {
	MediaIn         int
	MediaOut        int
	Dropped         int
	FeedbackBuilt   int
	ClientTWCCDrops int
	FeedbackRelayed int
}

// Relay is a running live AP.
type Relay struct {
	cfg Config

	mediaConn *net.UDPConn
	fbConn    *net.UDPConn
	client    *net.UDPAddr
	server    *net.UDPAddr

	mu      sync.Mutex
	q       *queue.FIFO
	ft      *core.FortuneTeller
	start   time.Time
	records []packet.TWCCArrival
	ssrc    uint32
	fbCount uint8
	stats   Stats

	kick chan struct{}
	done chan struct{}
	wg   sync.WaitGroup
}

// flowKey is the single relayed flow's identity inside the qdisc.
var flowKey = netem.FlowKey{SrcIP: 1, DstIP: 2, SrcPort: 5004, DstPort: 5004, Proto: packet.ProtoUDP}

// New creates and starts a relay.
func New(cfg Config) (*Relay, error) {
	if cfg.QueueLimit == 0 {
		cfg.QueueLimit = 256 << 10
	}
	if cfg.FeedbackEvery == 0 {
		cfg.FeedbackEvery = 40 * time.Millisecond
	}
	if cfg.Rate == 0 && cfg.Trace == nil {
		return nil, fmt.Errorf("liveap: Rate or Trace required")
	}
	mediaAddr, err := net.ResolveUDPAddr("udp", cfg.MediaListen)
	if err != nil {
		return nil, fmt.Errorf("liveap: media listen: %w", err)
	}
	fbAddr, err := net.ResolveUDPAddr("udp", cfg.FeedbackListen)
	if err != nil {
		return nil, fmt.Errorf("liveap: feedback listen: %w", err)
	}
	client, err := net.ResolveUDPAddr("udp", cfg.Client)
	if err != nil {
		return nil, fmt.Errorf("liveap: client addr: %w", err)
	}
	server, err := net.ResolveUDPAddr("udp", cfg.Server)
	if err != nil {
		return nil, fmt.Errorf("liveap: server addr: %w", err)
	}
	mediaConn, err := net.ListenUDP("udp", mediaAddr)
	if err != nil {
		return nil, err
	}
	fbConn, err := net.ListenUDP("udp", fbAddr)
	if err != nil {
		mediaConn.Close()
		return nil, err
	}

	q := queue.NewFIFO(cfg.QueueLimit)
	r := &Relay{
		cfg:       cfg,
		mediaConn: mediaConn,
		fbConn:    fbConn,
		client:    client,
		server:    server,
		q:         q,
		ft:        core.NewFortuneTeller(q, core.FortuneTellerConfig{}),
		start:     time.Now(),
		kick:      make(chan struct{}, 1),
		done:      make(chan struct{}),
	}
	r.wg.Add(3)
	go r.mediaLoop()
	go r.drainLoop()
	go r.feedbackLoop()
	if cfg.Zhuge {
		r.wg.Add(1)
		go r.twccTicker()
	}
	return r, nil
}

// MediaAddr returns the bound media-listen address.
func (r *Relay) MediaAddr() *net.UDPAddr { return r.mediaConn.LocalAddr().(*net.UDPAddr) }

// FeedbackAddr returns the bound feedback-listen address.
func (r *Relay) FeedbackAddr() *net.UDPAddr { return r.fbConn.LocalAddr().(*net.UDPAddr) }

// Stats returns a snapshot of the relay counters.
func (r *Relay) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// Close stops the relay and releases its sockets.
func (r *Relay) Close() {
	close(r.done)
	r.mediaConn.Close()
	r.fbConn.Close()
	r.wg.Wait()
}

func (r *Relay) now() time.Duration { return time.Since(r.start) }

func (r *Relay) rateAt(now time.Duration) float64 {
	if r.cfg.Trace != nil {
		return r.cfg.Trace.RateAt(now)
	}
	return r.cfg.Rate
}

// mediaLoop receives downlink datagrams, records fortunes, and enqueues.
func (r *Relay) mediaLoop() {
	defer r.wg.Done()
	buf := make([]byte, 64<<10)
	for {
		n, _, err := r.mediaConn.ReadFromUDP(buf)
		if err != nil {
			return // closed
		}
		data := make([]byte, n)
		copy(data, buf[:n])

		now := r.now()
		recorded := false
		r.mu.Lock()
		r.stats.MediaIn++
		if r.cfg.Zhuge && !packet.IsRTCP(data) {
			var hdr packet.RTPHeader
			if _, err := hdr.Unmarshal(data); err == nil && hdr.HasTWCC {
				// UDP may reorder; TWCC records must stay in ascending
				// (wrap-aware) sequence order, so late arrivals are
				// skipped (they will be reported lost, and recovered by
				// the endpoints' own loss machinery).
				inOrder := len(r.records) == 0 ||
					int16(hdr.TWCCSeq-r.records[len(r.records)-1].Seq) > 0
				if inOrder {
					pred := r.ft.Predict(now, flowKey)
					r.ssrc = hdr.SSRC
					// Faithful per-packet prediction, matching the
					// simulator's in-band updater (see internal/core).
					r.records = append(r.records, packet.TWCCArrival{Seq: hdr.TWCCSeq, At: now + pred.Total})
					recorded = true
				}
			}
		}
		ok := r.q.Enqueue(now, &netem.Packet{Flow: flowKey, Kind: netem.KindData, Size: n + 28, Payload: data})
		if !ok {
			r.stats.Dropped++
			// An AP-dropped packet must not be reported as received.
			if recorded {
				r.records = r.records[:len(r.records)-1]
			}
		}
		r.mu.Unlock()
		if ok {
			select {
			case r.kick <- struct{}{}:
			default:
			}
		}
	}
}

// drainLoop serialises the queue at the shaped rate toward the client.
func (r *Relay) drainLoop() {
	defer r.wg.Done()
	for {
		r.mu.Lock()
		p := r.q.Dequeue(r.now())
		if p != nil {
			r.ft.OnDequeue(r.now(), p)
		}
		r.mu.Unlock()
		if p == nil {
			select {
			case <-r.kick:
				continue
			case <-r.done:
				return
			}
		}
		data := p.Payload.([]byte)
		if _, err := r.mediaConn.WriteToUDP(data, r.client); err == nil {
			r.mu.Lock()
			r.stats.MediaOut++
			r.mu.Unlock()
		}
		rate := r.rateAt(r.now())
		if rate > 0 {
			airtime := time.Duration(float64(p.Size*8) / rate * float64(time.Second))
			select {
			case <-time.After(airtime):
			case <-r.done:
				return
			}
		}
	}
}

// feedbackLoop relays client RTCP, absorbing TWCC in Zhuge mode.
func (r *Relay) feedbackLoop() {
	defer r.wg.Done()
	buf := make([]byte, 64<<10)
	for {
		n, _, err := r.fbConn.ReadFromUDP(buf)
		if err != nil {
			return
		}
		if r.cfg.Zhuge {
			if pt, fmtField, _, err := packet.RTCPKind(buf[:n]); err == nil &&
				pt == packet.RTCPTypeRTPFB && fmtField == packet.RTPFBTWCC {
				r.mu.Lock()
				r.stats.ClientTWCCDrops++
				r.mu.Unlock()
				continue
			}
		}
		if _, err := r.fbConn.WriteToUDP(buf[:n], r.server); err == nil {
			r.mu.Lock()
			r.stats.FeedbackRelayed++
			r.mu.Unlock()
		}
	}
}

// twccTicker constructs the AP's own TWCC feedback every interval.
func (r *Relay) twccTicker() {
	defer r.wg.Done()
	tick := time.NewTicker(r.cfg.FeedbackEvery)
	defer tick.Stop()
	for {
		select {
		case <-r.done:
			return
		case <-tick.C:
		}
		r.mu.Lock()
		if len(r.records) == 0 {
			r.mu.Unlock()
			continue
		}
		fb := packet.BuildTWCC(r.ssrc, r.ssrc, r.fbCount, r.records)
		r.fbCount++
		r.records = r.records[:0]
		r.stats.FeedbackBuilt++
		r.mu.Unlock()
		raw := fb.Marshal(nil)
		r.fbConn.WriteToUDP(raw, r.server)
	}
}

package chaos

import (
	"sort"
	"time"

	"github.com/zhuge-project/zhuge/internal/metrics"
)

// Recovery summarises how a rate series absorbed one fault window.
type Recovery struct {
	// Baseline is the mean rate over the window before the fault (up to
	// 10 s, clamped to the stabilise phase).
	Baseline float64
	// DipDepth is the fractional drop of the series minimum after the
	// fault starts, relative to Baseline: 0 = no dip, 1 = full collapse.
	DipDepth float64
	// Recross is the time from the fault clearing to the first re-cross
	// of Baseline after the post-fault dip (RecrossAfter semantics).
	Recross time.Duration
}

// MeasureRecovery computes the phase-relative recovery figure of a rate
// series: baseline before the fault, the deepest dip after it starts, and
// the re-cross time after it clears.
func MeasureRecovery(rs *metrics.Series, ph Phases) Recovery {
	start, until := ph.InjectStart(), ph.End()
	win := 10 * time.Second
	if win > ph.Stabilise {
		win = ph.Stabilise
	}
	var sum float64
	var n int
	for _, pt := range rs.Points {
		if pt.At >= start-win && pt.At < start {
			sum += pt.Value
			n++
		}
	}
	var r Recovery
	if n == 0 {
		return r
	}
	r.Baseline = sum / float64(n)
	low := r.Baseline
	for _, pt := range rs.Points {
		if pt.At <= start || pt.At >= until {
			continue
		}
		if pt.Value < low {
			low = pt.Value
		}
	}
	if r.Baseline > 0 && low < r.Baseline {
		r.DipDepth = 1 - low/r.Baseline
	}
	// Time-to-recross counts from the fault clearing, against the
	// pre-fault baseline (the mean during injection would be depressed by
	// the fault itself).
	r.Recross = recrossGoal(rs, r.Baseline, ph.InjectEnd(), until)
	return r
}

// MeanRecross averages, over the scheduled events, the time the series
// needs to climb back to its pre-event mean. Each event is measured until
// the next one (or the end of the run).
func MeanRecross(rs *metrics.Series, events []time.Duration, end time.Duration) time.Duration {
	var total time.Duration
	for i, h := range events {
		until := end
		if i+1 < len(events) {
			until = events[i+1]
		}
		total += RecrossAfter(rs, h, until)
	}
	return total / time.Duration(len(events))
}

// RecrossAfter measures one event: the target is the mean value over the
// 10 seconds before it, and recovery runs from the event to the first
// re-cross of that target after the post-event dip (the first sample below
// target). A controller oscillating in steady state re-crosses within one
// sawtooth period, so undisturbed events score small; an event that stalls
// the controller scores the full stall.
func RecrossAfter(rs *metrics.Series, h, until time.Duration) time.Duration {
	var sum float64
	var n int
	for _, pt := range rs.Points {
		if pt.At >= h-10*time.Second && pt.At < h {
			sum += pt.Value
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return recrossGoal(rs, sum/float64(n), h, until)
}

// recrossGoal measures from `from` to the first re-cross of goal after the
// post-event dip (the first sample below goal).
func recrossGoal(rs *metrics.Series, goal float64, from, until time.Duration) time.Duration {
	dipped := false
	for _, pt := range rs.Points {
		if pt.At <= from {
			continue
		}
		if pt.At >= until {
			break
		}
		if !dipped {
			dipped = pt.Value < goal
			continue
		}
		if pt.Value >= goal {
			return pt.At - from
		}
	}
	if dipped {
		return until - from // never recovered inside the window
	}
	return 0
}

// WindowQuantile returns the exact q-quantile of the series values falling
// in [from, to), or 0 when the window is empty.
func WindowQuantile(s *metrics.Series, from, to time.Duration, q float64) float64 {
	var vals []float64
	for _, pt := range s.Points {
		if pt.At >= from && pt.At < to {
			vals = append(vals, pt.Value)
		}
	}
	if len(vals) == 0 {
		return 0
	}
	sort.Float64s(vals)
	if q <= 0 {
		return vals[0]
	}
	if q >= 1 {
		return vals[len(vals)-1]
	}
	pos := q * float64(len(vals)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 < len(vals) {
		return vals[i] + frac*(vals[i+1]-vals[i])
	}
	return vals[i]
}

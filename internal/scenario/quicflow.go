package scenario

import (
	"time"

	"github.com/zhuge-project/zhuge/internal/cca"
	"github.com/zhuge-project/zhuge/internal/core"
	"github.com/zhuge-project/zhuge/internal/metrics"
	"github.com/zhuge-project/zhuge/internal/netem"
	"github.com/zhuge-project/zhuge/internal/sim"
	"github.com/zhuge-project/zhuge/internal/transport/quicsim"
	"github.com/zhuge-project/zhuge/internal/video"
)

// QUICVideoFlow is an RTC stream over QUIC (§6's scalability case): the
// transport is end-to-end encrypted, so the AP sees nothing but the
// 5-tuple and packet direction — exactly what the out-of-band Feedback
// Updater needs. The application layer mirrors TCPVideoFlow.
type QUICVideoFlow struct {
	Flow    netem.FlowKey
	Sender  *quicsim.Sender
	Metrics *FlowMetrics

	FramesSent       int
	FramesDropped    int
	FrameDelay       *metrics.Histogram
	FrameDelaySeries metrics.Series
	completions      []time.Duration

	frames []tcpFrame
}

// FrameRateSeries returns the per-second delivered frame rate.
func (f *QUICVideoFlow) FrameRateSeries(total time.Duration) *metrics.Series {
	counts := metrics.PerSecondCounts(f.completions, total)
	s := &metrics.Series{}
	for i, c := range counts {
		s.Add(time.Duration(i)*time.Second, float64(c))
	}
	return s
}

// AddQUICVideoFlow attaches a QUIC video stream. The CCA field accepts
// "copa" (default), "cubic", "bbr" or "pcc". With SolutionZhuge the flow is
// optimised out-of-band, identically to TCP — no part of the datapath
// inspects the (notionally encrypted) payload.
func (p *Path) AddQUICVideoFlow(cfg TCPFlowConfig) *QUICVideoFlow {
	cfg = cfg.withDefaults()
	flow := p.NewFlowKey()
	flow.Proto = 17
	st := p.station(cfg.Station)
	pa := p.apOf(st)
	m := newFlowMetrics()
	f := &QUICVideoFlow{
		Flow:       flow,
		Metrics:    m,
		FrameDelay: metrics.NewHistogram(),
	}

	var cc cca.TCP
	if cfg.CCA == "pcc" {
		cc = cca.NewPCC(cfg.StartRate, cfg.MinRate, 2*cfg.MaxRate)
	} else {
		cc = newTCPController(cfg.CCA)
	}
	snd := quicsim.NewSender(p.S, flow, cc, p.ServerOut())
	rcv := quicsim.NewReceiver(p.S, flow.Reverse(), p.ClientOut())
	p.RegisterClient(flow, rcv)
	p.RegisterServer(flow, snd)
	f.Sender = snd

	if !cfg.Unoptimized && pa.Spec.Solution == SolutionZhuge {
		pa.Zhuge.Optimize(flow, core.ModeOutOfBand)
	}
	p.bindFlow(flow, st)

	rcv.OnDeliver = func(now sim.Time, upTo uint64) {
		for len(f.frames) > 0 && f.frames[0].end <= upTo {
			fr := f.frames[0]
			f.frames = f.frames[1:]
			f.FrameDelay.Add(now - fr.captured)
			f.FrameDelaySeries.Add(now, float64((now - fr.captured).Milliseconds()))
			f.completions = append(f.completions, now)
		}
	}

	enc := video.NewEncoder(p.S, video.EncoderConfig{FPS: cfg.FPS, StartBitrate: cfg.StartRate},
		p.S.NewRand("enc"+flow.String()))
	var streamEnd uint64
	var lastAcked uint64
	var lastRateUpdate sim.Time
	enc.OnFrame = func(fr video.Frame) {
		now := p.S.Now()
		acked := snd.Acked()
		backlog := streamEnd - acked
		if now > lastRateUpdate+500*time.Millisecond && now > time.Second {
			elapsed := (now - lastRateUpdate).Seconds()
			ackRate := float64(acked-lastAcked) * 8 / elapsed
			var target float64
			if float64(backlog) < 0.1*enc.Target()/8 {
				target = enc.Target() * 1.08
			} else {
				target = 0.85 * ackRate
			}
			if target < cfg.MinRate {
				target = cfg.MinRate
			}
			if target > cfg.MaxRate {
				target = cfg.MaxRate
			}
			enc.SetTargetBitrate(target)
			m.RateSeries.Add(now, target)
			lastAcked = acked
			lastRateUpdate = now
		}
		if float64(backlog) > enc.Target()/8 {
			f.FramesDropped++
			return
		}
		f.FramesSent++
		streamEnd += uint64(fr.Size)
		f.frames = append(f.frames, tcpFrame{end: streamEnd, captured: fr.CapturedAt})
		snd.Write(fr.Size)
	}

	p.AddDeliveryTap(func(pkt *netem.Packet) {
		if pkt.Flow != flow || pkt.Kind != netem.KindData {
			return
		}
		now := p.S.Now()
		rtt := now - pkt.SentAt + p.FlowReturnBase(flow)
		m.RTT.Add(rtt)
		m.RTTSeries.Add(now, float64(rtt.Milliseconds()))
		m.DeliveredBytes += float64(pkt.Size)
	})

	p.S.Schedule(cfg.StartAt, enc.Start)
	return f
}

// Cloudgaming: a latency-critical game stream over TCP/Copa through a 5G
// link that suffers a deep mid-session fade (the worst case of §2.1). The
// example compares every AP-side solution the paper evaluates — plain,
// FastAck, ABC (which needs modified endpoints) and Zhuge — on how long the
// stream stays above the 96ms cloud-gaming budget and how many frames blow
// the deadline.
package main

import (
	"fmt"
	"time"

	"github.com/zhuge-project/zhuge/internal/scenario"
	"github.com/zhuge-project/zhuge/internal/trace"
)

func main() {
	const (
		dur    = 90 * time.Second
		fadeAt = 30 * time.Second
	)
	// 60 Mbps 5G link fading 20x for five seconds mid-session.
	tr := &trace.Trace{Name: "5g-fade", BaseRTT: 40 * time.Millisecond}
	for at := time.Duration(0); at < dur; at += 50 * time.Millisecond {
		r := 60e6
		if at >= fadeAt && at < fadeAt+5*time.Second {
			r = 3e6
		}
		tr.Samples = append(tr.Samples, trace.Sample{At: at, Rate: r})
	}

	fmt.Printf("cloud-gaming stream over %s, 20x fade at t=%v\n\n", tr.Name, fadeAt)
	fmt.Printf("%-14s %12s %12s %14s %12s %9s\n",
		"solution", "rtt.p99", "over-budget", "recovery", "late-frames", "dropped")

	for _, cfg := range []struct {
		name string
		sol  scenario.Solution
		cca  string
	}{
		{"copa", scenario.SolutionNone, "copa"},
		{"copa+fastack", scenario.SolutionFastAck, "copa"},
		{"abc", scenario.SolutionABC, "abc"},
		{"copa+zhuge", scenario.SolutionZhuge, "copa"},
	} {
		p := scenario.NewPath(scenario.Options{Seed: 5, Trace: tr, Solution: cfg.sol})
		flow := p.AddTCPVideoFlow(scenario.TCPFlowConfig{CCA: cfg.cca, FPS: 60, MaxRate: 20e6})
		p.Run(dur)

		// The cloud-gaming delay budget from the paper's introduction.
		const budget = 96.0 // ms
		overBudget := flow.Metrics.RTTSeries.FractionAbove(budget)
		recovery, _ := flow.Metrics.RTTSeries.LastAbove(200, fadeAt)
		rec := "never degraded"
		if recovery > 0 {
			rec = (recovery - fadeAt).Round(100 * time.Millisecond).String()
		}
		late := flow.FrameDelay.FractionAbove(150 * time.Millisecond)
		fmt.Printf("%-14s %12v %11.2f%% %14s %11.2f%% %9d\n",
			cfg.name,
			flow.Metrics.RTT.Quantile(0.99).Round(time.Millisecond),
			100*overBudget, rec, 100*late, flow.FramesDropped)
	}
	fmt.Println("\nNote: ABC modifies AP, server and client; Zhuge touches only the AP.")
}

package scenario

import (
	"encoding/json"
	"io"
	"time"

	"github.com/zhuge-project/zhuge/internal/shard"
)

// CellLoad is one cell's (or shard's) measured weight in a sharded run.
// Events is deterministic (simulator event counts); ComputeNS/StallNS are
// wall-clock and only present when the profiling run injected a clock.
type CellLoad struct {
	// Cell is the cell label (the AP name) when the profiling run used one
	// shard per cell; otherwise the shard name covering several cells.
	Cell string `json:"cell"`
	// Cells lists the member cell labels when Cell names a multi-cell
	// shard.
	Cells     []string `json:"cells,omitempty"`
	Events    uint64   `json:"events"`
	Share     float64  `json:"share"` // fraction of total events
	ComputeNS int64    `json:"compute_ns,omitempty"`
	StallNS   int64    `json:"stall_ns,omitempty"`
}

// LoadProfile is the per-cell weight profile a sharded profiling run dumps
// (`zhuge-sim -campus N -profile-out f.json`). The Cells rows are exactly
// the weights a load-balanced BuildSharded grouping needs: run with one
// shard per cell (`-shards 0`) so every row is a single cell, then feed
// Weights() to the partitioner.
type LoadProfile struct {
	Workload   string     `json:"workload"`
	Shards     int        `json:"shards"`
	Windows    uint64     `json:"windows"`
	Events     uint64     `json:"events"`
	SerialNS   int64      `json:"serial_ns,omitempty"`
	CriticalNS int64      `json:"critical_path_ns,omitempty"`
	Cells      []CellLoad `json:"cells"`
	// MaxMinEventRatio is heaviest/lightest row by events — the load
	// imbalance that bounds critical-path speedup no matter how many
	// workers run the windows.
	MaxMinEventRatio float64 `json:"heaviest_to_lightest"`
}

// Weights returns cell label -> event weight, the input shape for
// WeightedPlacement. Multi-cell rows (from profiles written before exact
// per-cell attribution, or hand-edited ones) attribute the shard's events
// to each member cell evenly.
func (lp *LoadProfile) Weights() map[string]uint64 {
	w := make(map[string]uint64, len(lp.Cells))
	for _, c := range lp.Cells {
		if len(c.Cells) == 0 {
			w[c.Cell] = c.Events
			continue
		}
		for _, m := range c.Cells {
			w[m] = c.Events / uint64(len(c.Cells))
		}
	}
	return w
}

// WriteJSON writes the profile as one indented JSON document.
func (lp *LoadProfile) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(lp)
}

// ReadLoadProfile parses a profile previously written with WriteJSON — the
// `zhuge-sim -profile-in` path that feeds a committed profile straight into
// WeightedPlacement without a pre-pass.
func ReadLoadProfile(r io.Reader) (*LoadProfile, error) {
	var lp LoadProfile
	if err := json.NewDecoder(r).Decode(&lp); err != nil {
		return nil, err
	}
	return &lp, nil
}

// RunProfiled is Run with load attribution: p observes every window. Build
// p with NewProfiler and configure its Clock/Series/OnWindow before the
// call. When the build enabled the dynamic rebalancer it is attached to p
// here, so profiled and plain runs rebalance identically.
func (spd *ShardedPath) RunProfiled(d time.Duration, workers int, p *shard.Profiler) {
	if spd.Rebalancer != nil {
		p.AttachRebalancer(spd.Rebalancer)
	}
	spd.Cluster.RunProfiled(d, workers, p)
}

// ProfileWeights runs the profile-guided placement pre-pass: build sp at
// one shard per cell, advance it to d, and return every cell's exact event
// count keyed by label. The profile is events-only (no clock), so the
// weights are a pure function of (sp, d) — the same Spec profiled anywhere
// yields the same placement. Profile the horizon you intend to run: campus
// per-cell event rates are NOT stationary — stations roam between cells, so
// a cell idle in the first quarter can carry a tenth of the full-run load —
// and weights from a short prefix produce placements worse than round-robin.
// The pre-pass runs one shard per cell with no clock, so even the full
// horizon costs roughly one serial run.
//
// sp is consumed (BuildSharded mutates AP names in place); pass a freshly
// generated Spec, not one you intend to build again.
func ProfileWeights(sp Spec, cutDelay, d time.Duration, workers int) (map[string]uint64, error) {
	spd, err := BuildSharded(sp, ShardedOptions{Shards: 0, CutDelay: cutDelay})
	if err != nil {
		return nil, err
	}
	p := spd.NewProfiler()
	spd.RunProfiled(d, workers, p)
	w := make(map[string]uint64, len(spd.Cells))
	for i, ev := range p.CellEvents() {
		label := spd.Cells[i].Label
		if label == "" {
			label = "cell0"
		}
		w[label] = ev
	}
	return w, nil
}

// NewProfiler returns a load profiler bound to the path's cluster.
func (spd *ShardedPath) NewProfiler() *shard.Profiler {
	return shard.NewProfiler(spd.Cluster)
}

// LoadProfile folds a finished profiler into the per-cell weight document.
// workload names the scenario (e.g. "campus-100ap"). Rows are exact per
// cell at any shard count — the profiler attributes event deltas cell by
// cell, so grouping (and even mid-run migration) no longer blurs the
// weights. ComputeNS/StallNS stay per-shard measurements; they are attached
// to a cell's row only when the cell finished the run alone on its shard.
func (spd *ShardedPath) LoadProfile(p *shard.Profiler, workload string) *LoadProfile {
	lp := &LoadProfile{
		Workload:   workload,
		Shards:     len(spd.Cluster.Shards()),
		Windows:    p.Windows(),
		SerialNS:   int64(p.Serial()),
		CriticalNS: int64(p.Critical()),
	}
	loads := p.Loads()
	var minEv, maxEv uint64
	for i, ev := range p.CellEvents() {
		c := spd.Cells[i]
		label := c.Label
		if label == "" {
			label = "cell0"
		}
		row := CellLoad{Cell: label, Events: ev}
		if sh := c.Shard(); len(sh.Cells()) == 1 {
			row.ComputeNS = loads[shardIndex(spd, sh)].ComputeNS
			row.StallNS = loads[shardIndex(spd, sh)].StallNS
		}
		lp.Events += ev
		if i == 0 || ev < minEv {
			minEv = ev
		}
		if ev > maxEv {
			maxEv = ev
		}
		lp.Cells = append(lp.Cells, row)
	}
	for i := range lp.Cells {
		if lp.Events > 0 {
			lp.Cells[i].Share = float64(lp.Cells[i].Events) / float64(lp.Events)
		}
	}
	if minEv > 0 {
		lp.MaxMinEventRatio = float64(maxEv) / float64(minEv)
	}
	return lp
}

// shardIndex finds a shard's registration index in the cluster.
func shardIndex(spd *ShardedPath, sh *shard.Shard) int {
	for i, x := range spd.Cluster.Shards() {
		if x == sh {
			return i
		}
	}
	panic("scenario: shard not registered with this cluster")
}

// Package shard runs one simulated topology across several event heaps in
// parallel — conservative parallel discrete-event simulation in the
// bounded-time-window (null-message) style.
//
// The unit of decomposition is a cell: a subgraph that owns its own
// sim.Simulator (the PR 4 flat 4-ary event core, running as a cell-local
// clock) and shares no mutable state with any other cell. A shard is a
// parallel execution slot — the set of cells one worker advances during a
// window — and residency is pure scheduling: it decides which core runs a
// cell's events, never what those events do. That split is what makes both
// profile-guided placement and barrier-time migration safe: moving a cell
// between shards moves a pointer, not state.
//
// Cells are joined only by Edges — explicit links with a positive minimum
// delay, mirroring the topology graph's Wire nodes, whose delay is the
// lookahead that makes conservative synchronisation possible: a packet
// sent at time t cannot arrive before t+delay, so while the global minimum
// next-event time is m, every shard may safely execute events strictly
// before m+L (L = the minimum delay over all edges) without ever receiving
// a message in its past.
//
// A Cluster advances its shards in lockstep windows:
//
//	W = min(m + L, next barrier action, horizon)
//	every shard runs its cells' events in [now, W) in parallel (RunBefore)
//	edge inboxes drain in global edge order            (barrier)
//	actions scheduled exactly at W run single-threaded (barrier)
//
// Edges never deliver at send time — not even when source and destination
// happen to share a shard. Sends enqueue (packet, arrival, dst) into the
// edge's inbox ring; the coordinator drains every edge at every barrier in
// name order and schedules the arrivals on the destination simulators.
// Deferring uniformly is what makes placement invisible: the order in
// which cross-cell arrivals obtain event sequence numbers depends only on
// the (fixed) edge order and each edge's (deterministic, per-cell) FIFO
// content, never on which shard a cell happened to reside on.
//
// Ownership rules for the inbox rings: an Edge has exactly one producer
// (events of its source cell, run by whichever worker owns that cell's
// shard during a window) and one consumer (the coordinator, at the
// barrier). The barrier's WaitGroup gives the happens-before edge between
// the two; the ring's atomics additionally make in-window publication safe
// under the race detector. A packet pushed into an edge belongs to the
// edge until the barrier delivers it; senders must not retain or release
// it.
//
// Migration (Cluster.Migrate) re-homes a cell at a barrier, when no shard
// goroutine is running: the cell's event heap changes executor and the
// producer side of its edges changes with it, inside the same
// happens-before edge every barrier already provides. The Rebalancer
// drives migration from the Profiler's per-window load measurements —
// observe the imbalance at a barrier, react in that same barrier — and
// because placement is invisible, even a wall-clock-driven migration
// schedule cannot perturb outputs. The shardown and barriermut analyzers
// (internal/analysis) enforce the barrier-only discipline statically;
// Cluster.Migrate's executor check enforces it at runtime.
package shard

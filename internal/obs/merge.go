package obs

import "fmt"

// MergeSnapshots combines per-shard registry snapshots into one. At campus
// scale every cell exports its instruments under a cell-unique prefix; a
// name appearing in two snapshots is therefore a labelling bug — two
// components silently sharing one metric would corrupt both — and merging
// fails loudly instead of summing or overwriting. The merged snapshot
// serialises with sorted keys like any other (encoding/json renders map
// keys in order), so shard count and merge order leave no trace in
// exported metrics.
func MergeSnapshots(snaps ...Snapshot) (Snapshot, error) {
	out := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistStat{},
	}
	for _, s := range snaps {
		for name, v := range s.Counters {
			if _, dup := out.Counters[name]; dup {
				return Snapshot{}, fmt.Errorf("obs: counter %q exported by more than one shard", name)
			}
			out.Counters[name] = v
		}
		for name, v := range s.Gauges {
			if _, dup := out.Gauges[name]; dup {
				return Snapshot{}, fmt.Errorf("obs: gauge %q exported by more than one shard", name)
			}
			out.Gauges[name] = v
		}
		for name, v := range s.Histograms {
			if _, dup := out.Histograms[name]; dup {
				return Snapshot{}, fmt.Errorf("obs: histogram %q exported by more than one shard", name)
			}
			out.Histograms[name] = v
		}
	}
	return out, nil
}

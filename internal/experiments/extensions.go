package experiments

import (
	"fmt"
	"time"

	"github.com/zhuge-project/zhuge/internal/core"
	"github.com/zhuge-project/zhuge/internal/obs"
	"github.com/zhuge-project/zhuge/internal/scenario"
	"github.com/zhuge-project/zhuge/internal/trace"
)

// ExtQUIC is an extension experiment beyond the paper's tables: §6 claims
// Zhuge works unchanged on fully encrypted out-of-band transports ("even
// QUIC encrypts all packets end to end, Zhuge is still able to work").
// This runs the trace-driven evaluation over the QUIC transport with Copa
// and PCC Vivace, with and without Zhuge.
func ExtQUIC(cfg Config) *Table {
	cfg = cfg.withDefaults()
	dur := cfg.dur(300*time.Second, 30*time.Second)
	t := &Table{
		ID:     "ext-quic",
		Title:  "Extension: Zhuge over encrypted QUIC (out-of-band, 5-tuple only)",
		Header: []string{"trace", "cca", "solution", "P(rtt>200ms)", "P(fdelay>400ms)", "P(fps<10)"},
	}
	traces := standardTraces(cfg, dur)
	picks := []*trace.Trace{traces[0], traces[3]} // W1, C2
	type cell struct {
		tr  *trace.Trace
		cca string
		sol scenario.Solution
	}
	var cells []cell
	for _, tr := range picks {
		for _, ccaName := range []string{"copa", "pcc"} {
			for _, sol := range []scenario.Solution{scenario.SolutionNone, scenario.SolutionZhuge} {
				cells = append(cells, cell{tr, ccaName, sol})
			}
		}
	}
	runCells(cfg, t, len(cells), func(i int, o *obs.Obs) [][]string {
		c := cells[i]
		p := scenario.NewPath(scenario.Options{Obs: o, Seed: cfg.Seed, Trace: c.tr, Solution: c.sol})
		f := p.AddQUICVideoFlow(scenario.TCPFlowConfig{CCA: c.cca})
		p.Run(dur)
		return [][]string{{
			c.tr.Name, c.cca, c.sol.String(),
			pct(f.Metrics.RTT.FractionAbove(rttThreshold)),
			pct(f.FrameDelay.FractionAbove(frameThreshold)),
			pct(f.FrameRateSeries(dur).FractionBelow(lowFPS)),
		}}
	})
	return t
}

// ExtNADA is an extension experiment: the second in-band rate controller of
// Table 2 (RFC 8698) through the same in-band Feedback Updater, showing the
// updater is CCA-agnostic as long as the protocol carries TWCC.
func ExtNADA(cfg Config) *Table {
	cfg = cfg.withDefaults()
	dur := cfg.dur(300*time.Second, 30*time.Second)
	t := &Table{
		ID:     "ext-nada",
		Title:  "Extension: NADA (RFC 8698) through the in-band Feedback Updater",
		Header: []string{"trace", "solution", "P(rtt>200ms)", "P(fdelay>400ms)", "goodput(Mbps)"},
	}
	traces := standardTraces(cfg, dur)
	type cell struct {
		tr  *trace.Trace
		sol scenario.Solution
	}
	var cells []cell
	for _, tr := range []*trace.Trace{traces[0], traces[2]} { // W1, C1
		for _, sol := range []scenario.Solution{scenario.SolutionNone, scenario.SolutionZhuge} {
			cells = append(cells, cell{tr, sol})
		}
	}
	runCells(cfg, t, len(cells), func(i int, o *obs.Obs) [][]string {
		c := cells[i]
		p := scenario.NewPath(scenario.Options{Obs: o, Seed: cfg.Seed, Trace: c.tr, Solution: c.sol})
		f := p.AddRTPFlow(scenario.RTPFlowConfig{CCA: "nada"})
		p.Run(dur)
		return [][]string{{
			c.tr.Name, c.sol.String(),
			pct(f.Metrics.RTT.FractionAbove(rttThreshold)),
			pct(f.Decoder.FrameDelay.FractionAbove(frameThreshold)),
			fmt.Sprintf("%.2f", f.Metrics.DeliveredBytes*8/dur.Seconds()/1e6),
		}}
	})
	return t
}

// ExtSelectiveEstimation quantifies the §7.6 CPU optimisation end to end:
// prediction sampling intervals vs tail latency, alongside the cache hit
// rate that translates directly to AP CPU savings.
func ExtSelectiveEstimation(cfg Config) *Table {
	cfg = cfg.withDefaults()
	dur := cfg.dur(300*time.Second, 30*time.Second)
	tr := trace.Generate(trace.RestaurantWiFi(), dur, newRNG(cfg, "ext-sel"))
	t := &Table{
		ID:     "ext-selective",
		Title:  "Extension: selective estimation (sampled predictions, §7.6)",
		Header: []string{"sampleEvery", "P(rtt>200ms)", "P(fdelay>400ms)", "cacheHitRate"},
	}
	intervals := []time.Duration{0, 2 * time.Millisecond, 5 * time.Millisecond, 20 * time.Millisecond}
	runCells(cfg, t, len(intervals), func(i int, o *obs.Obs) [][]string {
		every := intervals[i]
		p := scenario.NewPath(scenario.Options{Obs: o, Seed: cfg.Seed, Trace: tr,
			Solution: scenario.SolutionZhuge,
			FTConfig: coreFTWithSampling(every)})
		f := p.AddRTPFlow(scenario.RTPFlowConfig{})
		p.Run(dur)
		ft := p.AP.FortuneTeller()
		hits := float64(ft.CacheHits())
		total := hits + float64(ft.Predictions())
		rate := 0.0
		if total > 0 {
			rate = hits / total
		}
		label := "per-packet"
		if every > 0 {
			label = every.String()
		}
		return [][]string{{
			label,
			pct(f.Metrics.RTT.FractionAbove(rttThreshold)),
			pct(f.Decoder.FrameDelay.FractionAbove(frameThreshold)),
			pct(rate),
		}}
	})
	return t
}

// coreFTWithSampling builds a Fortune Teller config with the given
// selective-estimation interval.
func coreFTWithSampling(every time.Duration) (cfg core.FortuneTellerConfig) {
	cfg.SampleEvery = every
	return cfg
}

// Package metrics provides the measurement toolkit shared by the simulator,
// the Zhuge datapath and the experiment harness: streaming log-bucketed
// histograms, time-windowed min/max/rate filters, and time-series helpers
// for the tail statistics the paper reports (CCDFs, fraction-above-threshold,
// per-second frame rates, degradation durations).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Histogram is a streaming histogram of durations with logarithmic buckets.
// Buckets grow by a fixed ratio so relative error is bounded (~2.5% with the
// default 128 buckets per decade is overkill; we use growth 1.02 ≈ 2%).
// The zero value is not usable; call NewHistogram.
type Histogram struct {
	min     time.Duration // lower bound of bucket 0
	growth  float64
	logG    float64
	buckets []uint64
	count   uint64
	sum     time.Duration
	maxSeen time.Duration
	minSeen time.Duration
	zeros   uint64 // values <= min
}

// NewHistogram returns a histogram covering [1µs, ~30min] with ~2% relative
// bucket error, suitable for packet and frame delays.
func NewHistogram() *Histogram {
	return NewHistogramRange(time.Microsecond, 1.02, 1200)
}

// NewHistogramRange returns a histogram whose bucket i covers
// [min*growth^i, min*growth^(i+1)). Values below min land in a dedicated
// underflow bucket; values above the top land in the last bucket.
func NewHistogramRange(min time.Duration, growth float64, buckets int) *Histogram {
	if min <= 0 || growth <= 1 || buckets < 1 {
		panic("metrics: invalid histogram parameters")
	}
	return &Histogram{
		min:     min,
		growth:  growth,
		logG:    math.Log(growth),
		buckets: make([]uint64, buckets),
		minSeen: math.MaxInt64,
	}
}

// clamp keeps bucket-interpolated estimates inside the exact observed range.
func (h *Histogram) clamp(d time.Duration) time.Duration {
	if d < h.minSeen {
		return h.minSeen
	}
	if d > h.maxSeen {
		return h.maxSeen
	}
	return d
}

func (h *Histogram) bucketIndex(d time.Duration) int {
	i := int(math.Log(float64(d)/float64(h.min)) / h.logG)
	if i >= len(h.buckets) {
		i = len(h.buckets) - 1
	}
	return i
}

// Add records one observation. Negative values are clamped to zero.
func (h *Histogram) Add(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.count++
	h.sum += d
	if d > h.maxSeen {
		h.maxSeen = d
	}
	if d < h.minSeen {
		h.minSeen = d
	}
	if d < h.min {
		h.zeros++
		return
	}
	h.buckets[h.bucketIndex(d)]++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the arithmetic mean of all observations.
func (h *Histogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Max returns the largest observation (exact, not bucketed).
func (h *Histogram) Max() time.Duration { return h.maxSeen }

// Min returns the smallest observation (exact, not bucketed), or 0 if empty.
func (h *Histogram) Min() time.Duration {
	if h.count == 0 {
		return 0
	}
	return h.minSeen
}

// Quantile returns an approximation of the q-quantile (0 <= q <= 1).
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.minSeen
	}
	if q >= 1 {
		return h.maxSeen
	}
	target := uint64(q * float64(h.count))
	if target < h.zeros {
		return h.min / 2
	}
	cum := h.zeros
	for i, c := range h.buckets {
		cum += c
		if cum > target {
			lo := float64(h.min) * math.Pow(h.growth, float64(i))
			hi := lo * h.growth
			return h.clamp(time.Duration((lo + hi) / 2))
		}
	}
	return h.maxSeen
}

// FractionAbove returns the fraction of observations strictly greater than d.
// This is the paper's headline tail metric (e.g. P(RTT > 200ms)).
func (h *Histogram) FractionAbove(d time.Duration) float64 {
	if h.count == 0 {
		return 0
	}
	if d < h.min {
		return float64(h.count-h.zeros) / float64(h.count)
	}
	idx := h.bucketIndex(d)
	var above uint64
	for i := idx + 1; i < len(h.buckets); i++ {
		above += h.buckets[i]
	}
	// Within the boundary bucket, assume a uniform split.
	lo := float64(h.min) * math.Pow(h.growth, float64(idx))
	hi := lo * h.growth
	frac := (hi - float64(d)) / (hi - lo)
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	above += uint64(frac * float64(h.buckets[idx]))
	return float64(above) / float64(h.count)
}

// CCDFPoint is one (value, fraction-of-samples-greater) pair.
type CCDFPoint struct {
	Value    time.Duration
	Fraction float64
}

// CCDF returns complementary-CDF points at each non-empty bucket boundary,
// the log-scaled tail curves plotted in Figures 2 and 13.
func (h *Histogram) CCDF() []CCDFPoint {
	if h.count == 0 {
		return nil
	}
	var pts []CCDFPoint
	remaining := h.count - h.zeros
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		lo := time.Duration(float64(h.min) * math.Pow(h.growth, float64(i)))
		pts = append(pts, CCDFPoint{Value: lo, Fraction: float64(remaining) / float64(h.count)})
		remaining -= c
	}
	return pts
}

// String summarises the distribution for logs and experiment tables.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p90=%v p99=%v max=%v",
		h.count, h.Mean().Round(time.Microsecond),
		h.Quantile(0.5).Round(time.Microsecond),
		h.Quantile(0.9).Round(time.Microsecond),
		h.Quantile(0.99).Round(time.Microsecond),
		h.maxSeen.Round(time.Microsecond))
}

// Merge adds all observations of other into h. Both histograms must share
// identical bucket geometry (they do when created by the same constructor).
func (h *Histogram) Merge(other *Histogram) {
	if h.min != other.min || h.growth != other.growth || len(h.buckets) != len(other.buckets) {
		panic("metrics: merging histograms with different geometry")
	}
	h.count += other.count
	h.sum += other.sum
	h.zeros += other.zeros
	if other.maxSeen > h.maxSeen {
		h.maxSeen = other.maxSeen
	}
	if other.count > 0 && other.minSeen < h.minSeen {
		h.minSeen = other.minSeen
	}
	for i, c := range other.buckets {
		h.buckets[i] += c
	}
}

// FloatQuantile returns the q-quantile of a float sample set (exact, sorts a
// copy). Used by the harness for small sample sets such as per-trace ratios.
func FloatQuantile(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= len(s) {
		return s[i]
	}
	return s[i]*(1-frac) + s[i+1]*frac
}

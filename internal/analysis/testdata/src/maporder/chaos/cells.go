// Package chaos is a maporder fixture: the matrix registry enumerates
// cells as data, so iteration feeding table rows must come from slices —
// ranging a map straight into output would scramble row order per run.
package chaos

import (
	"fmt"
	"io"
	"sort"
)

func printCellsDuringRange(w io.Writer, cells map[string]float64) {
	for id, dip := range cells {
		fmt.Fprintf(w, "%s %.2f\n", id, dip) // want `fmt\.Fprintf inside range over map`
	}
}

func collectCellIDs(cells map[string]float64) []string {
	var ids []string
	for id := range cells {
		ids = append(ids, id) // want `append to ids inside range over map`
	}
	return ids
}

// sortedCellsOK is the blessed idiom: collect, sort, then emit.
func sortedCellsOK(w io.Writer, cells map[string]float64) {
	ids := make([]string, 0, len(cells))
	for id := range cells {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		fmt.Fprintf(w, "%s %.2f\n", id, cells[id])
	}
}

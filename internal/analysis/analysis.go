// Package analysis is zhuge-lint: a suite of static analyzers that enforce
// the simulator's determinism, pool-safety and zero-alloc invariants at
// compile time instead of discovering violations at runtime through golden
// tests.
//
// The framework deliberately mirrors the golang.org/x/tools/go/analysis API
// (Analyzer, Pass, Diagnostic) so the analyzers could be ported to the real
// multichecker unchanged, but it is built purely on the standard library:
// packages are parsed with go/parser and type-checked with go/types, and
// dependency type information is imported from the build cache's export
// data (see load.go). That keeps the linter runnable in hermetic
// environments with nothing but the Go toolchain.
//
// Since PR 8 the framework also carries an interprocedural dataflow layer
// (dataflow.go): a static call graph over every loaded package with
// per-function summaries computed bottom-up over SCCs. The older analyzers
// consult it to see through function boundaries; the shard-concurrency
// analyzers are built directly on its reachability queries. See LINTING.md
// ("The dataflow layer") for what the summaries capture and their known
// imprecision.
//
// The analyzers and the invariants they protect:
//
//   - detclock: no wall-clock (time.Now/Since/Sleep/...) in deterministic
//     packages — the simulator's virtual clock is the only time source.
//   - detrand: no global math/rand state and no raw rand.NewSource in
//     deterministic packages — RNG streams must derive from the labeled
//     seed helpers (sim.LabeledRand / sim.Simulator.NewRand /
//     experiments.newRNG) so every stream is a pure function of
//     (root seed, component label).
//   - maporder: no map-iteration order leaking into exports — ranging over
//     a map while printing, writing to an io.Writer, or accumulating an
//     unsorted slice is exactly the bug class the j=1-vs-j=8 golden tests
//     exist to catch.
//   - poolsafe: no reads of a *netem.Packet after Release() and no double
//     Release — pooled packets are recycled and a stale reference aliases
//     a future packet.
//   - obsguard: expensive observability hooks (Tracer.Record and friends)
//     on struct fields must be dominated by a nil check on that field,
//     preserving the pinned 0-alloc disabled path.
//   - shardown: single-producer/single-consumer discipline for the shard
//     layer's edge rings — pushes only through (*Edge).Send from window
//     context, drains only from the barrier executor's Cluster methods.
//   - barriermut: state spanning more than one shard may only be mutated
//     from barrier context (Cluster.At callbacks), never from in-window
//     code.
//   - detshare: no mutable state shared across cells in deterministic
//     packages — global writes outside init, goroutine spawns, and
//     closures that cross a goroutine boundary while writing captures.
//
// Diagnostics can be suppressed with staticcheck-style comments:
//
//	//lint:ignore detclock <reason>         (this or the next line)
//	//lint:file-ignore detclock <reason>    (whole file)
//
// Run it with: go run ./cmd/zhuge-lint ./...
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore comments. It must be a valid identifier.
	Name string

	// Doc is a one-paragraph description of what the analyzer checks and
	// which invariant it protects.
	Doc string

	// Run applies the analyzer to a single type-checked package, reporting
	// findings through pass.Reportf.
	Run func(pass *Pass) error
}

// A Pass provides one analyzer with the parsed, type-checked view of one
// package plus a sink for diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Prog is the whole-program dataflow view (call graph + summaries)
	// built over every package of the same Load. Nil when the package was
	// constructed without one; analyzers must degrade to their
	// intraprocedural behavior in that case.
	Prog *Program

	diags *[]Diagnostic
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzers is the full zhuge-lint suite in the order cmd/zhuge-lint runs
// it.
var Analyzers = []*Analyzer{
	DetClock,
	DetRand,
	MapOrder,
	PoolSafe,
	ObsGuard,
	ShardOwn,
	BarrierMut,
	DetShare,
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Analyzers {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Run applies one analyzer to one loaded package and returns its findings
// with //lint:ignore suppressions already applied, sorted by position.
func Run(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	diags, err := runRaw(a, pkg)
	if err != nil {
		return nil, err
	}
	diags = applySuppressions(diags, collectSuppressions(pkg), nil)
	sortDiags(diags)
	return diags, nil
}

// runRaw applies one analyzer with no suppression filtering.
func runRaw(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Prog:      pkg.Prog,
		diags:     &diags,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
	}
	return diags, nil
}

// RunSuite applies a set of analyzers to one package and audits the
// package's //lint:ignore / //lint:file-ignore comments against the
// combined findings. A suppression is *stale* when every analyzer it names
// either does not exist or was part of this run and suppressed nothing;
// stale suppressions are reported as diagnostics under the pseudo-analyzer
// name "suppression" (they rot the allowlists — an ignore comment that no
// longer fires is a license for the next real violation to hide under).
// Suppressions naming an analyzer that exists but was not in this run are
// left alone: a partial run cannot judge them.
func RunSuite(pkg *Package, suite []*Analyzer) ([]Diagnostic, error) {
	var raw []Diagnostic
	ran := map[string]bool{}
	for _, a := range suite {
		d, err := runRaw(a, pkg)
		if err != nil {
			return nil, err
		}
		raw = append(raw, d...)
		ran[a.Name] = true
	}
	sups := collectSuppressions(pkg)
	used := map[*suppressComment]map[string]bool{}
	diags := applySuppressions(raw, sups, used)
	for _, s := range sups {
		stale := len(s.names) > 0
		for _, name := range s.names {
			if used[s][name] {
				stale = false
				break
			}
			if ByName(name) != nil && !ran[name] {
				stale = false // not judgeable in this run
				break
			}
		}
		if stale {
			diags = append(diags, Diagnostic{
				Pos:      s.pos,
				Analyzer: "suppression",
				Message: fmt.Sprintf(
					"stale suppression: //lint:%s %s no longer suppresses any diagnostic; delete it or narrow it (stale allowlists hide the next real violation)",
					s.directive(), strings.Join(s.names, ",")),
			})
		}
	}
	sortDiags(diags)
	return diags, nil
}

// RunAll applies the whole suite to one package, including the stale-
// suppression audit.
func RunAll(pkg *Package) ([]Diagnostic, error) {
	return RunSuite(pkg, Analyzers)
}

func sortDiags(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}

// ---- package classification ----------------------------------------------
//
// The analyzers scope themselves by import path. Deterministic packages are
// the simulator datapath: everything that runs under the virtual clock and
// must be byte-identical across runs and across -j worker counts. The
// allowlist covers the components that legitimately touch the wall clock or
// process-global state: liveap (a real UDP relay), parallel (measures real
// elapsed time per cell), obs (export timing metadata), and the cmd/ and
// examples/ binaries. Classification looks at path *segments*, so the
// analysistest fixtures under testdata/src/<analyzer>/<pkg> land in the
// same buckets as the real packages they mimic.

var deterministicSegments = map[string]bool{
	"sim":         true,
	"wireless":    true,
	"core":        true,
	"queue":       true,
	"netem":       true,
	"cca":         true,
	"transport":   true,
	"tcpsim":      true,
	"quicsim":     true,
	"rtp":         true,
	"video":       true,
	"trace":       true,
	"experiments": true,
	"scenario":    true,
	"chaos":       true,
	"shard":       true,
	"topo":        true,
	"baseline":    true,
	"packet":      true,
	"metrics":     true,
}

var allowlistedSegments = map[string]bool{
	"liveap":   true, // real-time UDP relay: wall clock is its job
	"parallel": true, // reports real elapsed time per cell
	"obs":      true, // export timing metadata is wall-clock by design
	"analysis": true, // this linter itself (shells out, walks the FS)
}

// DeterministicPkg reports whether the package at path is part of the
// deterministic simulator datapath, where detclock and detrand apply.
// cmd/ and examples/ binaries are always exempt, as is anything on the
// allowlist; otherwise the final path segment decides.
func DeterministicPkg(path string) bool {
	segs := strings.Split(path, "/")
	for _, s := range segs {
		if s == "cmd" || s == "examples" {
			return false
		}
	}
	last := segs[len(segs)-1]
	if allowlistedSegments[last] {
		return false
	}
	return deterministicSegments[last]
}

// MapOrderPkg reports whether maporder applies: the deterministic packages
// plus obs, whose JSONL/Chrome-trace/metrics exports are exactly where map
// order would leak into golden files.
func MapOrderPkg(path string) bool {
	if DeterministicPkg(path) {
		return true
	}
	segs := strings.Split(path, "/")
	return segs[len(segs)-1] == "obs"
}

// ---- suppression ----------------------------------------------------------

var (
	ignoreRe     = regexp.MustCompile(`^//\s*lint:ignore\s+(\S+)\s+\S`)
	fileIgnoreRe = regexp.MustCompile(`^//\s*lint:file-ignore\s+(\S+)\s+\S`)
)

// A suppressComment is one //lint:ignore or //lint:file-ignore comment.
type suppressComment struct {
	pos   token.Position
	names []string // analyzers it names, in source order
	file  bool     // file-ignore: covers the whole file
}

func (s *suppressComment) directive() string {
	if s.file {
		return "file-ignore"
	}
	return "ignore"
}

// collectSuppressions gathers every suppression comment in the package.
// Both forms require a non-empty reason and take a comma-separated
// analyzer list, e.g.:
//
//	//lint:ignore detclock,detrand test fixture exercising both
func collectSuppressions(pkg *Package) []*suppressComment {
	var out []*suppressComment
	add := func(pos token.Position, names string, file bool) {
		s := &suppressComment{pos: pos, file: file}
		for _, n := range strings.Split(names, ",") {
			if n = strings.TrimSpace(n); n != "" {
				s.names = append(s.names, n)
			}
		}
		out = append(out, s)
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if m := fileIgnoreRe.FindStringSubmatch(c.Text); m != nil {
					add(pkg.Fset.Position(c.Pos()), m[1], true)
				} else if m := ignoreRe.FindStringSubmatch(c.Text); m != nil {
					add(pkg.Fset.Position(c.Pos()), m[1], false)
				}
			}
		}
	}
	return out
}

// applySuppressions drops diagnostics covered by the given suppression
// comments. A //lint:ignore comment covers the line it sits on and the
// line below it (the staticcheck convention: the comment precedes the
// flagged statement); //lint:file-ignore covers its whole file. When used
// is non-nil, every (comment, analyzer) pair that suppressed at least one
// diagnostic is recorded in it — the stale-suppression audit's input.
func applySuppressions(diags []Diagnostic, sups []*suppressComment, used map[*suppressComment]map[string]bool) []Diagnostic {
	if len(diags) == 0 || len(sups) == 0 {
		return diags
	}
	markUsed := func(s *suppressComment, analyzer string) {
		if used == nil {
			return
		}
		if used[s] == nil {
			used[s] = map[string]bool{}
		}
		used[s][analyzer] = true
	}
	covers := func(s *suppressComment, d Diagnostic) bool {
		if s.pos.Filename != d.Pos.Filename {
			return false
		}
		if !s.file && s.pos.Line != d.Pos.Line && s.pos.Line != d.Pos.Line-1 {
			return false
		}
		for _, n := range s.names {
			if n == d.Analyzer {
				return true
			}
		}
		return false
	}
	kept := diags[:0]
	for _, d := range diags {
		suppressed := false
		for _, s := range sups {
			if covers(s, d) {
				markUsed(s, d.Analyzer)
				suppressed = true
				// Keep scanning: another comment covering the same
				// diagnostic is also legitimately "used".
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	return kept
}

package chaos

import (
	"fmt"
	"strings"
	"time"

	"github.com/zhuge-project/zhuge/internal/scenario"
)

// SolutionSpec is one comparison point of the evaluation: a transport, the
// AP-side solution, and the knob the paper varies alongside it (the qdisc
// for RTP, the sender CCA for TCP). These lists are the canonical data the
// figure tables and the chaos matrix both enumerate.
type SolutionSpec struct {
	Name      string // table label, e.g. "Gcc+Zhuge"
	Transport string // "rtp" or "tcp"
	Sol       scenario.Solution
	Qdisc     string // rtp: AP queue discipline ("fifo", "codel")
	CCA       string // tcp: sender rate controller ("copa", "abc")
}

// RTPSolutions are the RTP/RTCP comparison points of Figures 11/13/14/22.
var RTPSolutions = []SolutionSpec{
	{Name: "Gcc+FIFO", Transport: "rtp", Sol: scenario.SolutionNone, Qdisc: "fifo"},
	{Name: "Gcc+CoDel", Transport: "rtp", Sol: scenario.SolutionNone, Qdisc: "codel"},
	{Name: "Gcc+Zhuge", Transport: "rtp", Sol: scenario.SolutionZhuge, Qdisc: "fifo"},
}

// TCPSolutions are the TCP comparison points of Figures 12/15 and Table 3.
var TCPSolutions = []SolutionSpec{
	{Name: "Copa", Transport: "tcp", Sol: scenario.SolutionNone, CCA: "copa"},
	{Name: "Copa+FastAck", Transport: "tcp", Sol: scenario.SolutionFastAck, CCA: "copa"},
	{Name: "ABC", Transport: "tcp", Sol: scenario.SolutionABC, CCA: "abc"},
	{Name: "Copa+Zhuge", Transport: "tcp", Sol: scenario.SolutionZhuge, CCA: "copa"},
}

// Solutions returns every comparison point, RTP first.
func Solutions() []SolutionSpec {
	out := make([]SolutionSpec, 0, len(RTPSolutions)+len(TCPSolutions))
	out = append(out, RTPSolutions...)
	out = append(out, TCPSolutions...)
	return out
}

// Fault is one catalogue entry: a family plus its parameter. Param's
// meaning is family-specific (loss fraction, extra-delay ms, interferer
// count, collapse factor, storm size, drop factor, flow count).
type Fault struct {
	Family string
	Label  string
	Param  float64
	Dur    time.Duration // spike only: how long the spike lasts
}

// Injector builds the runnable injector for a phased fault.
func (f Fault) Injector() Injector {
	switch f.Family {
	case "loss":
		return StepLoss{Frac: f.Param}
	case "spike":
		return LatencySpike{Extra: time.Duration(f.Param) * time.Millisecond, Dur: f.Dur}
	case "burst":
		return InterfererBurst{N: int(f.Param)}
	case "collapse":
		return RateCollapse{Factor: f.Param}
	case "roamstorm":
		return RoamStorm{N: int(f.Param)}
	case "reboot":
		return APReboot{}
	}
	panic(fmt.Sprintf("chaos: fault family %q has no injector", f.Family))
}

// PhasedFaults is the fault catalogue of the chaos matrix: every entry is
// armed for the inject window of a stabilise→inject→recover run.
func PhasedFaults() []Fault {
	var fs []Fault
	for _, p := range []float64{2, 10, 25, 50, 100} {
		fs = append(fs, Fault{Family: "loss", Label: fmt.Sprintf("loss-%g%%", p), Param: p / 100})
	}
	for _, d := range []time.Duration{100 * time.Millisecond, time.Second, 5 * time.Second} {
		fs = append(fs, Fault{Family: "spike", Label: "spike-" + d.String(), Param: 200, Dur: d})
	}
	for _, n := range []int{10, 40} {
		fs = append(fs, Fault{Family: "burst", Label: fmt.Sprintf("burst-%d", n), Param: float64(n)})
	}
	for _, f := range []float64{4, 16} {
		fs = append(fs, Fault{Family: "collapse", Label: fmt.Sprintf("collapse-%gx", f), Param: f})
	}
	for _, n := range []int{8, 32} {
		fs = append(fs, Fault{Family: "roamstorm", Label: fmt.Sprintf("storm-%d", n), Param: float64(n)})
	}
	fs = append(fs, Fault{Family: "reboot", Label: "reboot"})
	return fs
}

// DropFactors are the bandwidth-reduction factors of Figures 4/14/15.
var DropFactors = []float64{2, 5, 10, 20, 50}

// CompetitionCounts are the CUBIC competitor counts of Figure 16.
var CompetitionCounts = []int{0, 10, 20, 30, 40}

// InterferenceCounts are the contending-station counts of Figure 17.
var InterferenceCounts = []int{0, 5, 10, 20, 30, 40}

// FigureFaults enumerates a legacy single-fault sweep (the microbenchmark
// figures) as matrix data.
func FigureFaults(family string) []Fault {
	var fs []Fault
	switch family {
	case "abw-drop":
		for _, k := range DropFactors {
			fs = append(fs, Fault{Family: family, Label: fmt.Sprintf("drop-%.0fx", k), Param: k})
		}
	case "competition":
		for _, n := range CompetitionCounts {
			fs = append(fs, Fault{Family: family, Label: fmt.Sprintf("flows-%d", n), Param: float64(n)})
		}
	case "interference":
		for _, n := range InterferenceCounts {
			fs = append(fs, Fault{Family: family, Label: fmt.Sprintf("intf-%d", n), Param: float64(n)})
		}
	default:
		panic(fmt.Sprintf("chaos: unknown figure family %q", family))
	}
	return fs
}

// Cell is one matrix entry: a solution under a fault.
type Cell struct {
	Sol   SolutionSpec
	Fault Fault
}

// ID names the cell for filters and logs, e.g. "rtp/Gcc+Zhuge/loss-50%".
func (c Cell) ID() string {
	return c.Sol.Transport + "/" + c.Sol.Name + "/" + c.Fault.Label
}

// Supported reports whether the combination can run: FastAck APs cannot be
// handover endpoints, so the roam-shaped faults skip them.
func (c Cell) Supported() bool {
	if c.Sol.Sol == scenario.SolutionFastAck {
		switch c.Fault.Family {
		case "roamstorm", "reboot":
			return false
		}
	}
	return true
}

// enumerate builds solutions × faults in deterministic order (solutions
// outer, faults inner), dropping unsupported combinations.
func enumerate(sols []SolutionSpec, faults []Fault) []Cell {
	var cells []Cell
	for _, s := range sols {
		for _, f := range faults {
			c := Cell{Sol: s, Fault: f}
			if c.Supported() {
				cells = append(cells, c)
			}
		}
	}
	return cells
}

// Cells enumerates the full phased chaos matrix: every solution of both
// transports under every catalogue fault.
func Cells() []Cell {
	return enumerate(Solutions(), PhasedFaults())
}

// FigureCells enumerates a legacy microbenchmark figure as matrix cells
// (same solution-outer, parameter-inner order the hand-written loops had).
func FigureCells(family, transport string) []Cell {
	sols := RTPSolutions
	if transport == "tcp" {
		sols = TCPSolutions
	}
	return enumerate(sols, FigureFaults(family))
}

// GoldenCells is the pinned representative subset the golden-gated
// chaos-matrix experiment runs: one fault per disturbance shape, every
// solution.
func GoldenCells() []Cell {
	keep := map[string]bool{
		"loss-50%": true, "spike-1s": true, "collapse-16x": true, "storm-8": true,
	}
	var faults []Fault
	for _, f := range PhasedFaults() {
		if keep[f.Label] {
			faults = append(faults, f)
		}
	}
	return enumerate(Solutions(), faults)
}

// FilterCells keeps cells whose ID contains any of the comma-separated
// substrings of filter; an empty filter keeps everything.
func FilterCells(cells []Cell, filter string) []Cell {
	if filter == "" {
		return cells
	}
	var pats []string
	for _, p := range strings.Split(filter, ",") {
		if p = strings.TrimSpace(p); p != "" {
			pats = append(pats, p)
		}
	}
	if len(pats) == 0 {
		return cells
	}
	var out []Cell
	for _, c := range cells {
		id := c.ID()
		for _, p := range pats {
			if strings.Contains(id, p) {
				out = append(out, c)
				break
			}
		}
	}
	return out
}

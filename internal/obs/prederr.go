package obs

import (
	"fmt"
	"strings"
	"time"

	"github.com/zhuge-project/zhuge/internal/metrics"
	"github.com/zhuge-project/zhuge/internal/netem"
)

// PredErr joins each Fortune Teller prediction against the packet's actual
// AP-to-client latency, measured when the packet is delivered over the air
// (the same join Figure 19 plots), and maintains error distributions per
// flow and per feedback mode. Absolute errors feed a streaming histogram
// (P50/P95/P99); the signed sum exposes bias — whether the Fortune Teller
// systematically over- or under-predicts for that flow.
type PredErr struct {
	flows map[netem.FlowKey]*predErrStats
	order []netem.FlowKey // first-observation order, for deterministic rows
	modes map[string]*predErrStats
	mode  map[netem.FlowKey]string // flow -> feedback-mode label
}

type predErrStats struct {
	abs       *metrics.Histogram
	signedSum time.Duration
	over      int64 // predicted > actual
	under     int64 // predicted < actual
}

func newPredErrStats() *predErrStats {
	return &predErrStats{abs: metrics.NewHistogram()}
}

func (s *predErrStats) observe(predicted, actual time.Duration) {
	err := predicted - actual
	s.signedSum += err
	if err > 0 {
		s.over++
	} else if err < 0 {
		s.under++
		err = -err
	}
	s.abs.Add(err)
}

// NewPredErr returns an empty accounter.
func NewPredErr() *PredErr {
	return &PredErr{
		flows: make(map[netem.FlowKey]*predErrStats),
		modes: make(map[string]*predErrStats),
		mode:  make(map[netem.FlowKey]string),
	}
}

// SetMode labels a flow with its feedback mode ("oob", "inband") so errors
// aggregate per mechanism as well as per flow. Nil-safe.
func (a *PredErr) SetMode(flow netem.FlowKey, mode string) {
	if a == nil {
		return
	}
	a.mode[flow] = mode
}

// Observe records one (predicted, actual) pair for a flow. Nil-safe.
func (a *PredErr) Observe(flow netem.FlowKey, predicted, actual time.Duration) {
	if a == nil {
		return
	}
	s := a.flows[flow]
	if s == nil {
		s = newPredErrStats()
		a.flows[flow] = s
		a.order = append(a.order, flow)
	}
	s.observe(predicted, actual)
	if mode := a.mode[flow]; mode != "" {
		ms := a.modes[mode]
		if ms == nil {
			ms = newPredErrStats()
			a.modes[mode] = ms
		}
		ms.observe(predicted, actual)
	}
}

// Samples returns the total number of joined pairs. Nil-safe.
func (a *PredErr) Samples() int64 {
	if a == nil {
		return 0
	}
	var n int64
	for _, s := range a.flows {
		n += int64(s.abs.Count())
	}
	return n
}

// PredErrStat is one exported row: absolute-error quantiles plus signed
// bias for a flow or a feedback mode.
type PredErrStat struct {
	Flow string `json:"flow,omitempty"`
	Mode string `json:"mode,omitempty"`
	N    uint64 `json:"n"`
	P50  int64  `json:"abs_err_p50_ns"`
	P95  int64  `json:"abs_err_p95_ns"`
	P99  int64  `json:"abs_err_p99_ns"`
	Bias int64  `json:"bias_ns"` // mean signed error; >0 over-predicts
	Over int64  `json:"over"`    // samples with predicted > actual
}

func (s *predErrStats) row() PredErrStat {
	n := s.abs.Count()
	r := PredErrStat{
		N:    n,
		P50:  int64(s.abs.Quantile(0.50)),
		P95:  int64(s.abs.Quantile(0.95)),
		P99:  int64(s.abs.Quantile(0.99)),
		Over: s.over,
	}
	if n > 0 {
		r.Bias = int64(s.signedSum) / int64(n)
	}
	return r
}

// Rows returns per-flow rows in first-observation order, followed by
// per-mode aggregate rows in sorted order. Nil-safe.
func (a *PredErr) Rows() []PredErrStat {
	if a == nil {
		return nil
	}
	rows := make([]PredErrStat, 0, len(a.order)+len(a.modes))
	for _, flow := range a.order {
		r := a.flows[flow].row()
		r.Flow = flow.String()
		r.Mode = a.mode[flow]
		rows = append(rows, r)
	}
	modes := make([]string, 0, len(a.modes))
	for m := range a.modes {
		modes = append(modes, m)
	}
	sortStrings(modes)
	for _, m := range modes {
		r := a.modes[m].row()
		r.Mode = m
		rows = append(rows, r)
	}
	return rows
}

// Table renders the rows as an aligned text table for terminal output.
func (a *PredErr) Table() string {
	rows := a.Rows()
	if len(rows) == 0 {
		return "prediction error: no samples\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %-8s %8s %12s %12s %12s %12s %8s\n",
		"flow", "mode", "n", "|err|.p50", "|err|.p95", "|err|.p99", "bias", "over%")
	for _, r := range rows {
		name := r.Flow
		if name == "" {
			name = "(all " + r.Mode + ")"
		}
		overPct := 0.0
		if r.N > 0 {
			overPct = 100 * float64(r.Over) / float64(r.N)
		}
		fmt.Fprintf(&b, "%-28s %-8s %8d %12s %12s %12s %12s %7.1f%%\n",
			name, r.Mode, r.N,
			time.Duration(r.P50).Round(10*time.Microsecond),
			time.Duration(r.P95).Round(10*time.Microsecond),
			time.Duration(r.P99).Round(10*time.Microsecond),
			time.Duration(r.Bias).Round(10*time.Microsecond),
			overPct)
	}
	return b.String()
}

// sortStrings is a tiny insertion sort; mode sets have at most a handful of
// entries and this avoids an import for one call.
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

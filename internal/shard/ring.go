package shard

import (
	"sync/atomic"

	"github.com/zhuge-project/zhuge/internal/netem"
	"github.com/zhuge-project/zhuge/internal/sim"
)

// Parcel is one cross-cell hand-off in flight: a packet, the virtual time
// it arrives, and the receiver it is delivered to on the destination shard.
type Parcel struct {
	P  *netem.Packet
	At sim.Time
	Dst netem.Receiver
}

// ringCap is the bounded inbox capacity per edge (must be a power of two).
// A window's worth of traffic on one cut edge rarely exceeds a handful of
// packets; anything beyond the ring spills to the overflow slice.
const ringCap = 256

// ring is a single-producer single-consumer bounded queue of parcels with
// an unbounded overflow spill. The producer is the source cell's events
// (one goroutine per window); the consumer is the coordinator at the
// barrier. head and tail are atomics so in-window pushes are cleanly
// published, but the design leans on the barrier: the consumer only drains
// between windows, after the worker pool's WaitGroup has established
// happens-before with every producer.
//
// Overflow keeps FIFO order with a sticky flag: once a push spills, every
// later push in the same window spills too (even if ring slots free up —
// they don't, the consumer is parked), so drain order is ring first,
// overflow second, both in push order.
type ring struct {
	buf  [ringCap]Parcel
	head atomic.Uint64 // next slot to pop (consumer-owned)
	tail atomic.Uint64 // next slot to push (producer-owned)

	overflowing bool
	overflow    []Parcel
}

// push enqueues a parcel. Producer side only.
func (r *ring) push(p Parcel) {
	if !r.overflowing {
		t := r.tail.Load()
		if t-r.head.Load() < ringCap {
			r.buf[t%ringCap] = p
			r.tail.Store(t + 1)
			return
		}
		r.overflowing = true
	}
	r.overflow = append(r.overflow, p)
}

// drain pops every queued parcel in FIFO order into fn and resets the
// overflow state. Consumer side only, at a barrier.
func (r *ring) drain(fn func(Parcel)) {
	h, t := r.head.Load(), r.tail.Load()
	for ; h < t; h++ {
		i := h % ringCap
		fn(r.buf[i])
		r.buf[i] = Parcel{}
	}
	r.head.Store(h)
	for i, p := range r.overflow {
		fn(p)
		r.overflow[i] = Parcel{}
	}
	r.overflow = r.overflow[:0]
	r.overflowing = false
}

// pending reports how many parcels are queued. Consumer side only.
func (r *ring) pending() int {
	return int(r.tail.Load()-r.head.Load()) + len(r.overflow)
}

package analysis

import (
	"go/ast"
	"go/types"
)

// ShardOwn enforces the single-producer/single-consumer discipline of the
// shard layer's edge rings. The parallel cluster (internal/shard) is
// correct only under a strict ownership protocol:
//
//   - each Edge's SPSC ring has exactly one producer — the owning source
//     shard's executor, pushing in-window through (*Edge).Send — and
//     exactly one consumer — the barrier executor, draining between
//     windows inside (*Cluster).drainEdges;
//   - the ring implementation's push/drain/pending are therefore private
//     protocol: push may only appear inside (*Edge).Send, drain and
//     pending only inside *Cluster methods.
//
// Violating either side is a data race that the ring's unsynchronized
// fast path turns into lost or duplicated parcels — output then depends
// on shard interleaving and the byte-identical gate (-shards 1 vs 8)
// breaks only under load, long after the edit that caused it.
//
// Three rules:
//
//  1. (packages named "shard", i.e. the protocol implementation and its
//     fixtures) calls to ring.push outside (*Edge).Send, or ring.drain /
//     ring.pending outside a *Cluster method, are flagged.
//  2. (everywhere, interprocedural) (*Edge).Send must not be reachable
//     from barrier context — a Cluster.At callback runs on the barrier
//     executor between windows, where pushing onto a ring races the
//     epilogue drain. Uses the Program's barrier-reachability closure;
//     literals the callback schedules onto a simulator run in-window
//     later and are correctly exempt.
//  3. (everywhere) (*Edge).Send must not appear inside a go statement:
//     a spawned goroutine is never the owning shard's executor.
//  4. (everywhere, interprocedural) (*Cluster).Migrate must be reachable
//     only from barrier context: migration transfers the ownership of a
//     cell's event heap AND the producer side of its edge rings in one
//     pointer move, which is safe exactly while every shard executor is
//     parked at a barrier. A Migrate reachable from in-window code (a
//     scheduled callback, a Receive handler) re-homes rings a live
//     executor is producing into; a Migrate inside a go statement has no
//     happens-before edge with anyone. Cluster.Migrate's executor counter
//     backstops this at runtime; the analyzer catches it at review time.
//
// Ownership *identity* — that in-window code on shard A only sends on
// edges whose source is A — is dynamic (edges are wired at Connect time)
// and remains the runtime gate's job; what this analyzer pins down
// statically is the execution-context half of the protocol.
var ShardOwn = &Analyzer{
	Name: "shardown",
	Doc: "enforce SPSC edge-ring ownership: ring.push only via (*Edge).Send, " +
		"drains only on the barrier executor, no Edge.Send from barrier actions or goroutines, " +
		"no Cluster.Migrate from in-window code or goroutines",
	Run: runShardOwn,
}

func runShardOwn(pass *Pass) error {
	if pass.Pkg.Name() == "shard" {
		checkRingConfinement(pass)
	}
	checkSendFromGoroutines(pass)
	checkMigrateFromGoroutines(pass)
	if pass.Prog != nil {
		checkSendFromBarrier(pass)
		checkMigrateFromWindow(pass)
	}
	return nil
}

// checkRingConfinement applies rule 1 inside the protocol package itself.
func checkRingConfinement(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			recv, name := declRecvType(pass, fd), fd.Name.Name
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := StaticCallee(pass.TypesInfo, call)
				if fn == nil || !funcIsMethodOn(fn, "shard", "ring") {
					return true
				}
				switch fn.Name() {
				case "push":
					if recv != "Edge" || name != "Send" {
						pass.Reportf(call.Pos(),
							"ring.push outside (*Edge).Send: the SPSC ring's producer side belongs exclusively to the owning shard's in-window Send path; any other producer races it")
					}
				case "drain", "pending":
					if recv != "Cluster" {
						pass.Reportf(call.Pos(),
							"ring.%s outside a *Cluster method: the consumer side of an edge ring belongs exclusively to the barrier executor (drainEdges between windows)", fn.Name())
					}
				}
				return true
			})
		}
	}
}

// declRecvType returns the receiver's named type for a method declaration
// ("" for plain functions).
func declRecvType(pass *Pass, fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := pass.TypesInfo.TypeOf(fd.Recv.List[0].Type)
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

func isEdgeSend(info *types.Info, call *ast.CallExpr) bool {
	fn := StaticCallee(info, call)
	return fn != nil && fn.Name() == "Send" && funcIsMethodOn(fn, "shard", "Edge")
}

func isClusterMigrate(info *types.Info, call *ast.CallExpr) bool {
	fn := StaticCallee(info, call)
	return fn != nil && fn.Name() == "Migrate" && funcIsMethodOn(fn, "shard", "Cluster")
}

// checkSendFromGoroutines applies rule 3: any Edge.Send lexically under a
// go statement (including inside the spawned literal) is a producer that
// is not the owning shard's executor.
func checkSendFromGoroutines(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			ast.Inspect(g, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok && isEdgeSend(pass.TypesInfo, call) {
					pass.Reportf(call.Pos(),
						"Edge.Send from a spawned goroutine: only the owning shard's executor may produce onto an SPSC edge ring; a goroutine racing it corrupts the ring")
				}
				return true
			})
			return false
		})
	}
}

// checkMigrateFromGoroutines applies the goroutine half of rule 4: a
// spawned goroutine holds no barrier, so a Migrate there transfers ring and
// heap ownership with no happens-before edge to the executors involved.
func checkMigrateFromGoroutines(pass *Pass) {
	if pass.Pkg.Name() == "shard" {
		return // the implementation's own tests exercise the runtime guard
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			ast.Inspect(g, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok && isClusterMigrate(pass.TypesInfo, call) {
					pass.Reportf(call.Pos(),
						"Cluster.Migrate from a spawned goroutine: migration re-homes a cell's event heap and edge rings and is only safe on the barrier executor, where every shard is provably parked")
				}
				return true
			})
			return false
		})
	}
}

// checkMigrateFromWindow applies the interprocedural half of rule 4: flag
// Migrate calls in any function the Program proves reachable from in-window
// context — scheduled callbacks, datapath Receive handlers, and everything
// they transitively call. Barrier actions (Cluster.At callbacks) are the
// legal home and are not in the window closure.
func checkMigrateFromWindow(pass *Pass) {
	if pass.Pkg.Name() == "shard" {
		return
	}
	win := pass.Prog.WindowReachable()
	check := func(node *FuncNode) {
		if node == nil || !win[node] {
			return
		}
		inspectOwn(node, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok && isClusterMigrate(pass.TypesInfo, call) {
				pass.Reportf(call.Pos(),
					"Cluster.Migrate reachable from in-window code: migration transfers cell and ring ownership and must run at a barrier (a Cluster.At action or the profiler's window hook), never while shard executors are advancing")
			}
			return true
		})
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch d := n.(type) {
			case *ast.FuncDecl:
				check(pass.Prog.DeclNode(d))
			case *ast.FuncLit:
				check(pass.Prog.LitNode(d))
			}
			return true
		})
	}
}

// checkSendFromBarrier applies rule 2: walk every function of this package
// that the Program proves reachable from barrier context and flag Edge.Send
// calls in its own body.
func checkSendFromBarrier(pass *Pass) {
	reach := pass.Prog.BarrierReachable()
	check := func(node *FuncNode) {
		if node == nil || !reach[node] {
			return
		}
		inspectOwn(node, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok && isEdgeSend(pass.TypesInfo, call) {
				pass.Reportf(call.Pos(),
					"Edge.Send reachable from barrier context (a Cluster.At callback): barrier actions run on the barrier executor between windows, where producing onto an edge ring races the epilogue drain; move the send into scheduled in-window code")
			}
			return true
		})
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch d := n.(type) {
			case *ast.FuncDecl:
				check(pass.Prog.DeclNode(d))
			case *ast.FuncLit:
				check(pass.Prog.LitNode(d))
			}
			return true
		})
	}
}

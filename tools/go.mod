// Pins the versions of the lint/scan tools CI installs, so an upstream
// release can never break the build (staticcheck@latest did exactly that
// risk). CI greps the versions out of this file — see the lint job in
// .github/workflows/ci.yml. Bump deliberately, in a reviewed diff.
module github.com/zhuge-project/zhuge/tools

go 1.22

require (
	golang.org/x/vuln v1.1.3
	honnef.co/go/tools v0.4.7
)

package chaos

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/zhuge-project/zhuge/internal/metrics"
	"github.com/zhuge-project/zhuge/internal/scenario"
)

// testPhases keeps injector-timing runs cheap: fault on at 300ms, off at
// 600ms, run ends at 900ms.
var testPhases = Phases{
	Stabilise: 300 * time.Millisecond,
	Inject:    300 * time.Millisecond,
	Recover:   300 * time.Millisecond,
}

// buildCell assembles a phased path for one injector without running it.
func buildCell(t *testing.T, sol SolutionSpec, f Fault) *scenario.Path {
	t.Helper()
	rc := RunConfig{Seed: 1, Phases: testPhases, Cell: Cell{Sol: sol, Fault: f}}
	inj := f.Injector()
	sp := rc.spec()
	inj.Prepare(&sp, testPhases)
	p := sp.Build()
	inj.Arm(p, testPhases)
	return p
}

func TestPhaseBoundaries(t *testing.T) {
	ph := Phases{Stabilise: 2 * time.Second, Inject: time.Second, Recover: 4 * time.Second}
	if got := ph.InjectStart(); got != 2*time.Second {
		t.Fatalf("InjectStart = %v", got)
	}
	if got := ph.InjectEnd(); got != 3*time.Second {
		t.Fatalf("InjectEnd = %v", got)
	}
	if got := ph.End(); got != 7*time.Second {
		t.Fatalf("End = %v", got)
	}
}

// TestStepLossFiresOnSchedule pins the fault window: loss is off through
// the stabilise phase, armed during inject, and cleared for recover.
func TestStepLossFiresOnSchedule(t *testing.T) {
	p := buildCell(t, RTPSolutions[0], Fault{Family: "loss", Param: 0.5})
	eps := time.Millisecond
	p.Run(testPhases.InjectStart() - eps)
	if got := p.Downlink.LossProb(); got != 0 {
		t.Fatalf("loss armed before inject: %v", got)
	}
	p.Run(testPhases.InjectStart() + eps)
	if got := p.Downlink.LossProb(); got != 0.5 {
		t.Fatalf("loss not armed during inject: %v", got)
	}
	p.Run(testPhases.InjectEnd() + eps)
	if got := p.Downlink.LossProb(); got != 0 {
		t.Fatalf("loss not cleared after inject: %v", got)
	}
}

func TestLatencySpikeFiresOnSchedule(t *testing.T) {
	// Dur longer than the inject window: the spike must still clear at
	// inject end.
	p := buildCell(t, RTPSolutions[0], Fault{Family: "spike", Param: 200, Dur: time.Hour})
	eps := time.Millisecond
	p.Run(testPhases.InjectStart() - eps)
	if got := p.WANDownLink().ExtraDelay(); got != 0 {
		t.Fatalf("spike before inject: %v", got)
	}
	p.Run(testPhases.InjectStart() + eps)
	if got := p.WANDownLink().ExtraDelay(); got != 200*time.Millisecond {
		t.Fatalf("spike not armed: %v", got)
	}
	p.Run(testPhases.InjectEnd() + eps)
	if got := p.WANDownLink().ExtraDelay(); got != 0 {
		t.Fatalf("spike not cleared at inject end: %v", got)
	}
}

func TestInterfererBurstFiresOnSchedule(t *testing.T) {
	p := buildCell(t, RTPSolutions[0], Fault{Family: "burst", Param: 40})
	eps := time.Millisecond
	p.Run(testPhases.InjectStart() + eps)
	if got := p.Downlink.Config().Interferers; got != 40 {
		t.Fatalf("burst not armed: %d interferers", got)
	}
	p.Run(testPhases.InjectEnd() + eps)
	if got := p.Downlink.Config().Interferers; got != 0 {
		t.Fatalf("burst not cleared: %d interferers", got)
	}
}

func TestRateCollapseWindow(t *testing.T) {
	p := buildCell(t, RTPSolutions[0], Fault{Family: "collapse", Param: 16})
	base := p.Downlink.CurrentRate(testPhases.InjectStart() - time.Millisecond)
	mid := p.Downlink.CurrentRate(testPhases.InjectStart() + testPhases.Inject/2)
	after := p.Downlink.CurrentRate(testPhases.InjectEnd() + time.Millisecond)
	if base != BaseRate || after != BaseRate {
		t.Fatalf("rate outside window: base=%v after=%v", base, after)
	}
	if want := BaseRate / 16; mid != want {
		t.Fatalf("collapsed rate = %v, want %v", mid, want)
	}
}

func TestAPRebootRoamsMeasuredStation(t *testing.T) {
	p := buildCell(t, RTPSolutions[2], Fault{Family: "reboot"})
	eps := time.Millisecond
	st := p.Station(MeasuredStation)
	p.Run(testPhases.InjectStart() - eps)
	if got := st.AP().NodeName(); got != "ap0" {
		t.Fatalf("station on %q before inject", got)
	}
	p.Run(testPhases.InjectStart() + eps)
	if got := st.AP().NodeName(); got != "ap1" {
		t.Fatalf("station on %q during inject, want ap1", got)
	}
	p.Run(testPhases.InjectEnd() + eps)
	if got := st.AP().NodeName(); got != "ap0" {
		t.Fatalf("station on %q after inject, want ap0", got)
	}
}

func TestRoamStormMovesAllStations(t *testing.T) {
	n := 4
	p := buildCell(t, RTPSolutions[0], Fault{Family: "roamstorm", Param: float64(n)})
	eps := time.Millisecond
	p.Run(testPhases.InjectStart() + eps)
	for i := 0; i < n; i++ {
		st := p.Station(fmt.Sprintf("storm%d", i))
		if got := st.AP().NodeName(); got != "ap0" {
			t.Fatalf("storm%d on %q during inject, want ap0", i, got)
		}
	}
	p.Run(testPhases.InjectEnd() + eps)
	for i := 0; i < n; i++ {
		st := p.Station(fmt.Sprintf("storm%d", i))
		if got := st.AP().NodeName(); got != "ap1" {
			t.Fatalf("storm%d on %q after inject, want ap1", i, got)
		}
	}
}

// synthDip builds a rate series: baseline until inject start, a dip to
// `low`, then a climb that re-crosses baseline at injectEnd+recrossAfter.
func synthDip(ph Phases, low float64, recrossAfter time.Duration) *metrics.Series {
	s := &metrics.Series{}
	base := 100.0
	step := 100 * time.Millisecond
	for at := time.Duration(0); at < ph.End(); at += step {
		switch {
		case at < ph.InjectStart():
			s.Add(at, base)
		case at < ph.InjectEnd()+recrossAfter:
			s.Add(at, low)
		default:
			s.Add(at, base)
		}
	}
	return s
}

// TestRecoveryMonotonic pins the recovery metric's shape on synthetic
// dips: deeper dips score larger DipDepth, later re-crosses score larger
// Recross.
func TestRecoveryMonotonic(t *testing.T) {
	ph := Phases{Stabilise: 10 * time.Second, Inject: 2 * time.Second, Recover: 20 * time.Second}

	prevDepth := -1.0
	for _, low := range []float64{90, 50, 10} {
		r := MeasureRecovery(synthDip(ph, low, time.Second), ph)
		if r.Baseline != 100 {
			t.Fatalf("baseline = %v", r.Baseline)
		}
		if r.DipDepth <= prevDepth {
			t.Fatalf("DipDepth not increasing: %v after %v", r.DipDepth, prevDepth)
		}
		prevDepth = r.DipDepth
	}

	prevRecross := time.Duration(-1)
	for _, after := range []time.Duration{time.Second, 5 * time.Second, 15 * time.Second} {
		r := MeasureRecovery(synthDip(ph, 10, after), ph)
		if r.Recross <= prevRecross {
			t.Fatalf("Recross not increasing: %v after %v", r.Recross, prevRecross)
		}
		prevRecross = r.Recross
	}

	// No dip at all: both metrics are zero.
	r := MeasureRecovery(synthDip(ph, 100, 0), ph)
	if r.DipDepth != 0 || r.Recross != 0 {
		t.Fatalf("flat series scored dip=%v recross=%v", r.DipDepth, r.Recross)
	}

	// A dip that never recovers scores the full recover window.
	r = MeasureRecovery(synthDip(ph, 10, ph.Recover+time.Minute), ph)
	if r.Recross != ph.Recover {
		t.Fatalf("unrecovered dip scored %v, want %v", r.Recross, ph.Recover)
	}
}

func TestRecrossAfterMatchesHandoverSemantics(t *testing.T) {
	// A roam with no dip afterwards scores zero.
	s := &metrics.Series{}
	for at := time.Duration(0); at < 30*time.Second; at += time.Second {
		s.Add(at, 100)
	}
	if got := RecrossAfter(s, 15*time.Second, 30*time.Second); got != 0 {
		t.Fatalf("flat RecrossAfter = %v", got)
	}
	// Dip at 16s, recross at 20s.
	s = &metrics.Series{}
	for at := time.Duration(0); at < 30*time.Second; at += time.Second {
		v := 100.0
		if at >= 16*time.Second && at < 20*time.Second {
			v = 10
		}
		s.Add(at, v)
	}
	if got := RecrossAfter(s, 15*time.Second, 30*time.Second); got != 5*time.Second {
		t.Fatalf("RecrossAfter = %v, want 5s", got)
	}
}

func TestWindowQuantile(t *testing.T) {
	s := &metrics.Series{}
	for i := 0; i < 100; i++ {
		s.Add(time.Duration(i)*time.Second, float64(i))
	}
	// Window [50s, 100s) holds values 50..99.
	if got := WindowQuantile(s, 50*time.Second, 100*time.Second, 0); got != 50 {
		t.Fatalf("q0 = %v", got)
	}
	if got := WindowQuantile(s, 50*time.Second, 100*time.Second, 1); got != 99 {
		t.Fatalf("q1 = %v", got)
	}
	mid := WindowQuantile(s, 50*time.Second, 100*time.Second, 0.5)
	if mid < 70 || mid > 80 {
		t.Fatalf("median = %v", mid)
	}
	if got := WindowQuantile(s, time.Hour, 2*time.Hour, 0.5); got != 0 {
		t.Fatalf("empty window = %v", got)
	}
}

func TestMatrixEnumeration(t *testing.T) {
	cells := Cells()
	if len(cells) < 48 {
		t.Fatalf("matrix has %d cells, want >= 48", len(cells))
	}
	seen := make(map[string]bool, len(cells))
	for _, c := range cells {
		id := c.ID()
		if seen[id] {
			t.Fatalf("duplicate cell %q", id)
		}
		seen[id] = true
		if c.Sol.Sol == scenario.SolutionFastAck &&
			(c.Fault.Family == "roamstorm" || c.Fault.Family == "reboot") {
			t.Fatalf("unsupported cell enumerated: %q", id)
		}
	}
	// Golden subset is a subset of the full matrix.
	for _, c := range GoldenCells() {
		if !seen[c.ID()] {
			t.Fatalf("golden cell %q not in the full matrix", c.ID())
		}
	}
	// Every solution appears in the golden subset.
	for _, s := range Solutions() {
		found := false
		for _, c := range GoldenCells() {
			if c.Sol.Name == s.Name {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("solution %q missing from golden subset", s.Name)
		}
	}
}

func TestFilterCells(t *testing.T) {
	cells := Cells()
	rtp := FilterCells(cells, "rtp/")
	if len(rtp) == 0 || len(rtp) >= len(cells) {
		t.Fatalf("rtp filter kept %d of %d", len(rtp), len(cells))
	}
	for _, c := range rtp {
		if c.Sol.Transport != "rtp" {
			t.Fatalf("rtp filter kept %q", c.ID())
		}
	}
	multi := FilterCells(cells, "loss-50%, reboot")
	for _, c := range multi {
		if !strings.Contains(c.ID(), "loss-50%") && !strings.Contains(c.ID(), "reboot") {
			t.Fatalf("multi filter kept %q", c.ID())
		}
	}
	if got := FilterCells(cells, ""); len(got) != len(cells) {
		t.Fatalf("empty filter dropped cells")
	}
}

func TestFigureCellsOrder(t *testing.T) {
	cells := FigureCells("abw-drop", "rtp")
	if len(cells) != len(RTPSolutions)*len(DropFactors) {
		t.Fatalf("fig14 grid has %d cells", len(cells))
	}
	// Solutions outer, factors inner — the hand-written loop order the
	// golden tables pin.
	if cells[0].Sol.Name != RTPSolutions[0].Name || cells[0].Fault.Param != DropFactors[0] {
		t.Fatalf("first cell %q", cells[0].ID())
	}
	if cells[1].Sol.Name != RTPSolutions[0].Name || cells[1].Fault.Param != DropFactors[1] {
		t.Fatalf("second cell %q", cells[1].ID())
	}
	last := cells[len(cells)-1]
	if last.Sol.Name != RTPSolutions[len(RTPSolutions)-1].Name {
		t.Fatalf("last cell %q", last.ID())
	}
}

// TestRunPhasedDeterministic pins that a cell is a pure function of its
// RunConfig: two runs give identical results.
func TestRunPhasedDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation run")
	}
	ph := Phases{Stabilise: 2 * time.Second, Inject: time.Second, Recover: 2 * time.Second}
	cell := Cell{Sol: RTPSolutions[2], Fault: Fault{Family: "loss", Label: "loss-50%", Param: 0.5}}
	a := RunPhased(RunConfig{Seed: 7, Phases: ph, Cell: cell})
	b := RunPhased(RunConfig{Seed: 7, Phases: ph, Cell: cell})
	if a != b {
		t.Fatalf("same config, different results:\n%+v\n%+v", a, b)
	}
}

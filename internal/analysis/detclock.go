package analysis

import (
	"go/ast"
	"go/types"
)

// DetClock forbids wall-clock access in the deterministic simulator
// datapath. Every result the evaluation produces — Fortune Teller
// prediction error, TWCC feedback timing, golden traces — is trustworthy
// only because the virtual clock makes runs byte-identical at any worker
// count; a single time.Now() in the datapath silently couples simulation
// output to host scheduling.
//
// Scope: packages classified by DeterministicPkg (sim, wireless, core,
// queue, netem, cca, transport, video, trace, experiments, ...). The
// liveap relay, the parallel runner's elapsed-time accounting, obs export
// timing, cmd/ and examples/ binaries, and _test.go files are exempt.
var DetClock = &Analyzer{
	Name: "detclock",
	Doc: "forbid time.Now/Since/Sleep and runtime timers in deterministic packages; " +
		"the simulator's virtual clock (sim.Time) is the only admissible time source",
	Run: runDetClock,
}

// wallClockFuncs are the package time functions that read the host clock or
// arm runtime timers. Pure conversions and constants (time.Duration,
// time.Millisecond, time.Unix construction from explicit integers) are
// fine: they carry no ambient state.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
}

func runDetClock(pass *Pass) error {
	if !DeterministicPkg(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			if wallClockFuncs[fn.Name()] {
				pass.Reportf(id.Pos(),
					"time.%s is wall-clock and breaks simulation determinism in package %s; use the simulator's virtual clock (sim.Simulator.Now / Schedule)",
					fn.Name(), pass.Pkg.Path())
			}
			return true
		})
	}
	return nil
}

package video

import (
	"testing"
	"time"

	"github.com/zhuge-project/zhuge/internal/sim"
)

func TestEncoderRateAndCadence(t *testing.T) {
	s := sim.New(1)
	e := NewEncoder(s, EncoderConfig{FPS: 24, StartBitrate: 2e6}, s.NewRand("enc"))
	var frames []Frame
	e.OnFrame = func(f Frame) { frames = append(frames, f) }
	e.Start()
	s.RunUntil(10 * time.Second)
	if len(frames) < 239 || len(frames) > 241 {
		t.Fatalf("frames in 10s: %d, want ~240", len(frames))
	}
	total := 0
	for _, f := range frames {
		total += f.Size
	}
	rate := float64(total*8) / 10
	if rate < 1.6e6 || rate > 2.4e6 {
		t.Errorf("encoded rate %.0f, want ~2e6", rate)
	}
}

func TestEncoderKeyFrames(t *testing.T) {
	s := sim.New(1)
	e := NewEncoder(s, EncoderConfig{FPS: 24, StartBitrate: 2e6, KeyInterval: 48}, s.NewRand("enc"))
	var frames []Frame
	e.OnFrame = func(f Frame) { frames = append(frames, f) }
	e.Start()
	s.RunUntil(4 * time.Second)
	keySizes, pSizes := 0.0, 0.0
	keyN, pN := 0, 0
	for i, f := range frames {
		wantKey := i%48 == 0
		if f.Key != wantKey {
			t.Fatalf("frame %d key=%v, want %v", i, f.Key, wantKey)
		}
		if f.Key {
			keySizes += float64(f.Size)
			keyN++
		} else {
			pSizes += float64(f.Size)
			pN++
		}
	}
	if keyN == 0 || pN == 0 {
		t.Fatal("missing frames")
	}
	if keySizes/float64(keyN) < 2*pSizes/float64(pN) {
		t.Errorf("key frames should be ~3x P frames: key=%.0f p=%.0f", keySizes/float64(keyN), pSizes/float64(pN))
	}
}

func TestEncoderTracksTargetChange(t *testing.T) {
	s := sim.New(1)
	e := NewEncoder(s, EncoderConfig{FPS: 25, StartBitrate: 2e6, KeyInterval: 1 << 30, SizeJitter: 0.001}, s.NewRand("enc"))
	var sizes []int
	e.OnFrame = func(f Frame) { sizes = append(sizes, f.Size) }
	e.Start()
	s.At(time.Second, func() { e.SetTargetBitrate(500e3) })
	s.RunUntil(2 * time.Second)
	// Frame 10 (before change) ~ 2e6/25/8 = 10000B; frame 40 ~ 2500B.
	if sizes[10] < 8000 || sizes[10] > 12000 {
		t.Errorf("pre-change frame size %d, want ~10000", sizes[10])
	}
	if sizes[40] < 2000 || sizes[40] > 3000 {
		t.Errorf("post-change frame size %d, want ~2500", sizes[40])
	}
}

func TestDecoderInOrder(t *testing.T) {
	d := NewDecoder()
	for i := 0; i < 10; i++ {
		f := Frame{ID: uint64(i), Key: i == 0, CapturedAt: sim.Time(i) * sim.Time(40*time.Millisecond)}
		d.OnFrameComplete(f.CapturedAt+100*time.Millisecond, f)
	}
	if d.Decoded != 10 || d.Skipped != 0 {
		t.Fatalf("decoded=%d skipped=%d", d.Decoded, d.Skipped)
	}
	if got := d.FrameDelay.Mean(); got != 100*time.Millisecond {
		t.Errorf("mean frame delay %v, want 100ms", got)
	}
}

func TestDecoderBlocksOnMissingReference(t *testing.T) {
	d := NewDecoder()
	d.OnFrameComplete(0, Frame{ID: 0, Key: true})
	// Frame 1 never completes; frames 2..4 are P frames: stuck.
	for i := 2; i <= 4; i++ {
		d.OnFrameComplete(sim.Time(i), Frame{ID: uint64(i)})
	}
	if d.Decoded != 1 {
		t.Fatalf("decoded %d, want 1 (chain blocked)", d.Decoded)
	}
	// Late arrival of frame 1 releases the chain.
	d.OnFrameComplete(sim.Time(100), Frame{ID: 1})
	if d.Decoded != 5 {
		t.Errorf("decoded %d after late frame, want 5", d.Decoded)
	}
}

func TestDecoderKeyFrameResetsChain(t *testing.T) {
	d := NewDecoder()
	d.OnFrameComplete(0, Frame{ID: 0, Key: true})
	// Frames 1-3 lost forever. Key frame 4 arrives: chain resets.
	d.OnFrameComplete(sim.Time(200), Frame{ID: 4, Key: true})
	if d.Decoded != 2 {
		t.Errorf("decoded %d, want 2", d.Decoded)
	}
	if d.Skipped != 3 {
		t.Errorf("skipped %d, want 3", d.Skipped)
	}
	// Subsequent P frames continue normally.
	d.OnFrameComplete(sim.Time(240), Frame{ID: 5})
	if d.Decoded != 3 {
		t.Errorf("decoded %d, want 3", d.Decoded)
	}
	// A stale frame from the skipped range is ignored.
	d.OnFrameComplete(sim.Time(300), Frame{ID: 2})
	if d.Decoded != 3 {
		t.Errorf("stale frame changed decode count: %d", d.Decoded)
	}
}

func TestFrameRateSeries(t *testing.T) {
	d := NewDecoder()
	// 24 fps for 2 seconds, then 5 fps for 1 second.
	id := uint64(0)
	for i := 0; i < 48; i++ {
		d.OnFrameComplete(sim.Time(i)*sim.Time(time.Second/24), Frame{ID: id, Key: id == 0})
		id++
	}
	for i := 0; i < 5; i++ {
		d.OnFrameComplete(2*time.Second+sim.Time(i)*sim.Time(200*time.Millisecond), Frame{ID: id, Key: false})
		id++
	}
	if got := d.LowFrameRateRatio(3*time.Second, 10); got < 0.3 || got > 0.4 {
		t.Errorf("low-fps ratio %.2f, want 1/3", got)
	}
}

package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"github.com/zhuge-project/zhuge/internal/metrics"
	"github.com/zhuge-project/zhuge/internal/obs"
	"github.com/zhuge-project/zhuge/internal/scenario"
)

// WriteCSV renders the table as plot-ready CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	row := func(cells []string) error {
		out := make([]string, len(cells))
		for i, c := range cells {
			out[i] = esc(c)
		}
		_, err := fmt.Fprintln(w, strings.Join(out, ","))
		return err
	}
	if err := row(t.Header); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := row(r); err != nil {
			return err
		}
	}
	return nil
}

// Fig13CCDF exports the full complementary-CDF curves behind Figure 13 —
// the log-scaled tail plots of network RTT and frame delay on traces W1 and
// C1 — one (value_ms, fraction_above) point per histogram bucket. Feed the
// CSV to any plotting tool to regenerate the paper's curves.
func Fig13CCDF(cfg Config) *Table {
	cfg = cfg.withDefaults()
	dur := cfg.dur(fullTraceRun, 30*time.Second)
	traces := standardTraces(cfg, dur)
	picks := traces[:1]
	picks = append(picks, traces[2]) // W1, C1

	t := &Table{
		ID:     "fig13-ccdf",
		Title:  "Full CCDF curves for Figure 13 (plot-ready)",
		Header: []string{"trace", "solution", "metric", "value_ms", "fraction_above"},
	}
	curve := func(trName, solName, metric string, h *metrics.Histogram) [][]string {
		var rows [][]string
		for _, pt := range h.CCDF() {
			if pt.Fraction < 1e-5 {
				break
			}
			rows = append(rows, []string{
				trName, solName, metric,
				fmt.Sprintf("%.2f", pt.Value.Seconds()*1000),
				fmt.Sprintf("%.6f", pt.Fraction),
			})
		}
		return rows
	}
	cells := rtpTraceCells(picks)
	runCells(cfg, t, len(cells), func(i int, o *obs.Obs) [][]string {
		c := cells[i]
		res := runRTP(scenario.Options{Obs: o, Seed: cfg.Seed, Trace: c.tr, Solution: c.sol.sol, Qdisc: c.sol.qdisc}, dur)
		rows := curve(c.tr.Name, c.sol.name, "rtt", res.rtt)
		return append(rows, curve(c.tr.Name, c.sol.name, "frameDelay", res.frameDelay)...)
	})
	return t
}

package obs

import (
	"encoding/json"
	"io"
	"time"

	"github.com/zhuge-project/zhuge/internal/metrics"
)

// Counter is a monotonically increasing integer instrument. All methods are
// no-ops on a nil receiver, so a component built without a registry pays one
// nil check per update.
type Counter struct{ v int64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v++
}

// Add adds n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v += n
}

// Value returns the current count; 0 on a nil receiver.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a last-value instrument.
type Gauge struct{ v float64 }

// Set records the current value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v = v
}

// Value returns the last set value; 0 on a nil receiver.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Hist is a nil-safe duration histogram. Instruments whose name ends in
// ".n" record dimensionless counts cast to time.Duration (e.g. packets per
// AMPDU); their snapshot values read as raw integers, not nanoseconds.
type Hist struct{ h *metrics.Histogram }

// Observe records one value.
func (h *Hist) Observe(d time.Duration) {
	if h == nil {
		return
	}
	h.h.Add(d)
}

// Histogram exposes the underlying streaming histogram; nil on a nil
// receiver.
func (h *Hist) Histogram() *metrics.Histogram {
	if h == nil {
		return nil
	}
	return h.h
}

// Registry names and owns a simulation's instruments. Resolving an
// instrument is done once at component construction; updates then touch the
// instrument directly, never the maps. Not safe for concurrent use — one
// registry per simulation.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Hist
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Hist),
	}
}

// Counter returns the named counter, creating it on first use. Nil-safe:
// a nil registry yields a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Hist returns the named duration histogram, creating it on first use.
func (r *Registry) Hist(name string) *Hist {
	if r == nil {
		return nil
	}
	h := r.hists[name]
	if h == nil {
		h = &Hist{h: metrics.NewHistogram()}
		r.hists[name] = h
	}
	return h
}

// HistStat is the exported summary of one histogram. Durations are
// nanoseconds (or raw counts for ".n"-suffixed instruments).
type HistStat struct {
	Count uint64 `json:"count"`
	Mean  int64  `json:"mean_ns"`
	P50   int64  `json:"p50_ns"`
	P90   int64  `json:"p90_ns"`
	P95   int64  `json:"p95_ns"`
	P99   int64  `json:"p99_ns"`
	Max   int64  `json:"max_ns"`
}

// Snapshot is a point-in-time copy of every instrument, safe to export
// after the owning simulation finished. encoding/json renders map keys
// sorted, so snapshots serialise deterministically.
type Snapshot struct {
	Counters   map[string]int64    `json:"counters"`
	Gauges     map[string]float64  `json:"gauges"`
	Histograms map[string]HistStat `json:"histograms"`
}

// Snapshot copies out all instrument values. Nil-safe: a nil registry
// yields an empty (non-nil-map) snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistStat{},
	}
	if r == nil {
		return s
	}
	for name, c := range r.counters {
		s.Counters[name] = c.v
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.v
	}
	for name, h := range r.hists {
		hh := h.h
		s.Histograms[name] = HistStat{
			Count: hh.Count(),
			Mean:  int64(hh.Mean()),
			P50:   int64(hh.Quantile(0.50)),
			P90:   int64(hh.Quantile(0.90)),
			P95:   int64(hh.Quantile(0.95)),
			P99:   int64(hh.Quantile(0.99)),
			Max:   int64(hh.Max()),
		}
	}
	return s
}

// MetricsReport is the top-level JSON document WriteMetricsJSON emits: the
// registry snapshot plus the prediction-error and control-loop tables.
type MetricsReport struct {
	Metrics Snapshot      `json:"metrics"`
	PredErr []PredErrStat `json:"prediction_error,omitempty"`
	Loop    []LoopStat    `json:"control_loop,omitempty"`
}

// WriteMetricsJSON writes the bundle's registry snapshot, prediction-error
// rows and control-loop decomposition as one indented JSON document.
func (o *Obs) WriteMetricsJSON(w io.Writer) error {
	rep := MetricsReport{Metrics: o.regOrNil().Snapshot()}
	if pe := o.Errs(); pe != nil {
		rep.PredErr = pe.Rows()
	}
	if lt := o.ControlLoop(); lt != nil {
		rep.Loop = lt.Rows()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func (o *Obs) regOrNil() *Registry {
	if o == nil {
		return nil
	}
	return o.Reg
}

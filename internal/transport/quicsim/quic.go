// Package quicsim implements a simulation QUIC transport: monotonically
// increasing packet numbers (no retransmission ambiguity), ACK frames with
// ranges, packet- and time-threshold loss detection (RFC 9002), and stream
// data carried in freshly numbered packets on retransmission.
//
// Its purpose in this repository is the §6 deployability claim: QUIC
// encrypts everything above the UDP header, so an AP can read nothing but
// the 5-tuple — and Zhuge's out-of-band Feedback Updater needs nothing
// else. The simulator enforces the same opacity: in-network elements see
// netem.Packet{Flow, Kind, Size} only; the payload here is never inspected
// outside the endpoints.
package quicsim

import (
	"sort"
	"time"

	"github.com/zhuge-project/zhuge/internal/cca"
	"github.com/zhuge-project/zhuge/internal/netem"
	"github.com/zhuge-project/zhuge/internal/sim"
)

const (
	dataOverhead = 45 // IPv4 + UDP + QUIC short header + frame headers
	ackSize      = 70

	// RFC 9002 loss-detection thresholds.
	packetThreshold = 3
	timeThresholdN  = 9.0 / 8.0
)

// dataPacket is the payload of one QUIC data packet (opaque to the network).
type dataPacket struct {
	PktNum uint64
	Offset uint64 // stream offset
	Len    int
	SentAt sim.Time
}

// ackFrame is the payload of an ACK packet: the largest received packet
// number and ranges of received packet numbers below it.
type ackFrame struct {
	Largest  uint64
	Ranges   []ackRange // descending, including the range holding Largest
	LargestAt sim.Time  // receive time of Largest (ack-delay accounting)
}

type ackRange struct {
	Lo, Hi uint64 // inclusive
}

// Sender is the QUIC sending endpoint.
type Sender struct {
	s    *sim.Simulator
	cc   cca.TCP
	out  netem.Receiver
	flow netem.FlowKey

	nextPktNum uint64
	streamNext uint64 // next stream byte to transmit for the first time
	appEnd     uint64

	// retransmission queue of stream chunks declared lost
	retxQueue []streamChunk

	inflight map[uint64]dataPacket
	inflightBytes int

	largestAcked uint64
	haveAcked    bool

	srtt, rttvar time.Duration
	rto          time.Duration
	rtoTimer     *sim.Timer
	rtoBackoff   int

	pacingNext sim.Time
	sendTimer  *sim.Timer

	// delivered tracking for app-level frame completion
	ackedRanges *rangeSet

	// OnRTT receives every RTT sample.
	OnRTT func(now sim.Time, rtt time.Duration)
	// OnAckedBytes fires when the contiguous acknowledged prefix advances.
	OnAcked func(now sim.Time, upTo uint64)

	lostPackets int
	timeouts    int
}

type streamChunk struct {
	Offset uint64
	Len    int
}

// NewSender builds a QUIC sender for flow with controller cc.
func NewSender(s *sim.Simulator, flow netem.FlowKey, cc cca.TCP, out netem.Receiver) *Sender {
	return &Sender{
		s: s, cc: cc, out: out, flow: flow,
		inflight:    make(map[uint64]dataPacket),
		rto:         time.Second,
		ackedRanges: newRangeSet(),
	}
}

// CC returns the congestion controller.
func (t *Sender) CC() cca.TCP { return t.cc }

// LostPackets returns the count of packets declared lost.
func (t *Sender) LostPackets() int { return t.lostPackets }

// Timeouts returns the PTO count.
func (t *Sender) Timeouts() int { return t.timeouts }

// InFlight returns unacknowledged bytes in the network.
func (t *Sender) InFlight() int { return t.inflightBytes }

// Acked returns the length of the contiguous acknowledged stream prefix.
func (t *Sender) Acked() uint64 { return t.ackedRanges.contiguous() }

// SRTT returns the smoothed RTT.
func (t *Sender) SRTT() time.Duration { return t.srtt }

// Pending returns stream bytes not yet transmitted for the first time.
func (t *Sender) Pending() int { return int(t.appEnd - t.streamNext) }

// Write makes n more application bytes available.
func (t *Sender) Write(n int) {
	t.appEnd += uint64(n)
	t.trySend()
}

func (t *Sender) trySend() {
	now := t.s.Now()
	if t.sendTimer != nil && !t.sendTimer.Stopped() {
		return
	}
	for t.inflightBytes < t.cc.CWND() {
		if rate := t.cc.PacingRate(now); rate > 0 && t.pacingNext > now {
			t.sendTimer = t.s.At(t.pacingNext, func() {
				t.sendTimer = nil
				t.trySend()
			})
			return
		}
		var chunk streamChunk
		if len(t.retxQueue) > 0 {
			chunk = t.retxQueue[0]
			t.retxQueue = t.retxQueue[1:]
		} else if t.streamNext < t.appEnd {
			n := int(t.appEnd - t.streamNext)
			if n > cca.MSS {
				n = cca.MSS
			}
			chunk = streamChunk{Offset: t.streamNext, Len: n}
			t.streamNext += uint64(n)
		} else {
			return
		}
		t.sendData(chunk)
		if rate := t.cc.PacingRate(now); rate > 0 {
			gap := time.Duration(float64(chunk.Len+dataOverhead) * 8 / rate * float64(time.Second))
			if t.pacingNext < now {
				t.pacingNext = now
			}
			t.pacingNext += gap
		}
	}
}

func (t *Sender) sendData(chunk streamChunk) {
	now := t.s.Now()
	dp := dataPacket{PktNum: t.nextPktNum, Offset: chunk.Offset, Len: chunk.Len, SentAt: now}
	t.nextPktNum++
	t.inflight[dp.PktNum] = dp
	t.inflightBytes += dp.Len
	p := netem.NewPacket()
	*p = netem.Packet{
		Flow:    t.flow,
		Kind:    netem.KindData,
		Size:    dp.Len + dataOverhead,
		Seq:     dp.PktNum,
		SentAt:  now,
		Payload: dp,
	}
	t.out.Receive(p)
	t.armPTO()
}

func (t *Sender) armPTO() {
	if t.rtoTimer != nil {
		t.rtoTimer.Stop()
	}
	backoff := t.rto << t.rtoBackoff
	if backoff > time.Minute {
		backoff = time.Minute
	}
	t.rtoTimer = t.s.After(backoff, t.onPTO)
}

// onPTO is the probe timeout: re-send the oldest in-flight chunk.
func (t *Sender) onPTO() {
	if len(t.inflight) == 0 {
		return
	}
	t.timeouts++
	t.rtoBackoff++
	t.cc.OnRTO(t.s.Now())
	// Declare the oldest packet lost and probe with its data immediately,
	// bypassing the congestion window (RFC 9002 §7.5: probe packets may
	// exceed the window — the in-flight packets blocking it are exactly
	// the ones presumed lost).
	oldest := uint64(1<<63 - 1)
	for pn := range t.inflight {
		if pn < oldest {
			oldest = pn
		}
	}
	t.declareLost(oldest)
	if len(t.retxQueue) > 0 {
		chunk := t.retxQueue[0]
		t.retxQueue = t.retxQueue[1:]
		t.sendData(chunk)
	}
	t.trySend()
	t.armPTO()
}

func (t *Sender) declareLost(pn uint64) {
	dp, ok := t.inflight[pn]
	if !ok {
		return
	}
	delete(t.inflight, pn)
	t.inflightBytes -= dp.Len
	t.lostPackets++
	t.retxQueue = append(t.retxQueue, streamChunk{Offset: dp.Offset, Len: dp.Len})
}

// Receive implements netem.Receiver: ACK packets from the network.
func (t *Sender) Receive(p *netem.Packet) {
	ack, ok := p.Payload.(ackFrame)
	if !ok {
		return
	}
	now := t.s.Now()

	newlyAcked := 0
	var largestNewlyAcked *dataPacket
	for _, r := range ack.Ranges {
		for pn := r.Lo; pn <= r.Hi; pn++ {
			dp, ok := t.inflight[pn]
			if !ok {
				continue
			}
			delete(t.inflight, pn)
			t.inflightBytes -= dp.Len
			newlyAcked += dp.Len
			t.ackedRanges.add(dp.Offset, dp.Offset+uint64(dp.Len))
			if largestNewlyAcked == nil || dp.PktNum > largestNewlyAcked.PktNum {
				cp := dp
				largestNewlyAcked = &cp
			}
		}
	}
	if newlyAcked == 0 {
		return
	}
	if ack.Largest > t.largestAcked || !t.haveAcked {
		t.largestAcked = ack.Largest
		t.haveAcked = true
	}
	t.rtoBackoff = 0

	var rtt time.Duration
	if largestNewlyAcked != nil && largestNewlyAcked.PktNum == ack.Largest {
		rtt = now - largestNewlyAcked.SentAt
		t.updateRTT(rtt)
		if t.OnRTT != nil {
			t.OnRTT(now, rtt)
		}
	}

	// Loss detection (RFC 9002): packet threshold and time threshold.
	lossDelay := time.Duration(timeThresholdN * float64(max64(t.srtt, rtt)))
	if lossDelay <= 0 {
		lossDelay = 200 * time.Millisecond
	}
	var lost []uint64
	for pn, dp := range t.inflight {
		if pn+packetThreshold <= t.largestAcked || (dp.SentAt+lossDelay < now && pn < t.largestAcked) {
			lost = append(lost, pn)
		}
	}
	if len(lost) > 0 {
		sort.Slice(lost, func(i, j int) bool { return lost[i] < lost[j] })
		for _, pn := range lost {
			t.declareLost(pn)
		}
		t.cc.OnLoss(now)
	}

	t.cc.OnAck(cca.AckEvent{
		Now:        now,
		AckedBytes: newlyAcked,
		RTT:        rtt,
		InFlight:   t.inflightBytes,
		AppLimited: t.Pending() == 0 && len(t.retxQueue) == 0 && t.inflightBytes < t.cc.CWND()*3/4,
	})
	if t.OnAcked != nil {
		t.OnAcked(now, t.Acked())
	}
	if len(t.inflight) == 0 {
		if t.rtoTimer != nil {
			t.rtoTimer.Stop()
		}
	} else {
		t.armPTO()
	}
	t.trySend()
}

func (t *Sender) updateRTT(rtt time.Duration) {
	if t.srtt == 0 {
		t.srtt = rtt
		t.rttvar = rtt / 2
	} else {
		d := t.srtt - rtt
		if d < 0 {
			d = -d
		}
		t.rttvar = (3*t.rttvar + d) / 4
		t.srtt = (7*t.srtt + rtt) / 8
	}
	t.rto = t.srtt + 4*t.rttvar
	if t.rto < 200*time.Millisecond {
		t.rto = 200 * time.Millisecond
	}
}

func max64(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

// Receiver is the QUIC receiving endpoint: it tracks received packet
// numbers, acknowledges every packet with ranges, and reassembles the
// stream.
type Receiver struct {
	s    *sim.Simulator
	out  netem.Receiver
	flow netem.FlowKey

	received *rangeSet // packet numbers
	stream   *rangeSet // stream bytes

	largest   uint64
	largestAt sim.Time

	// OnDeliver fires as the contiguous in-order stream prefix advances.
	OnDeliver func(now sim.Time, upTo uint64)
}

// NewReceiver builds a receiver whose ACKs travel into out with ackFlow.
func NewReceiver(s *sim.Simulator, ackFlow netem.FlowKey, out netem.Receiver) *Receiver {
	return &Receiver{
		s: s, out: out, flow: ackFlow,
		received: newRangeSet(),
		stream:   newRangeSet(),
	}
}

// Delivered returns the contiguous in-order stream bytes received.
func (r *Receiver) Delivered() uint64 { return r.stream.contiguous() }

// Receive implements netem.Receiver.
func (r *Receiver) Receive(p *netem.Packet) {
	dp, ok := p.Payload.(dataPacket)
	if !ok {
		return
	}
	now := r.s.Now()
	r.received.add(dp.PktNum, dp.PktNum+1)
	if dp.PktNum >= r.largest {
		r.largest = dp.PktNum
		r.largestAt = now
	}
	before := r.stream.contiguous()
	r.stream.add(dp.Offset, dp.Offset+uint64(dp.Len))
	if after := r.stream.contiguous(); after > before && r.OnDeliver != nil {
		r.OnDeliver(now, after)
	}
	// Acknowledge immediately (RTC tuning: no ack delay).
	ack := netem.NewPacket()
	*ack = netem.Packet{
		Flow:    r.flow,
		Kind:    netem.KindAck,
		Size:    ackSize,
		Seq:     r.largest,
		SentAt:  now,
		Payload: ackFrame{Largest: r.largest, Ranges: r.received.descendingRanges(32), LargestAt: r.largestAt},
	}
	r.out.Receive(ack)
}

// rangeSet tracks a set of [lo, hi) uint64 ranges.
type rangeSet struct {
	ranges []ackRange // ascending, non-overlapping, Hi inclusive form internally [Lo, Hi]
}

func newRangeSet() *rangeSet { return &rangeSet{} }

// add inserts [lo, hi) into the set.
func (rs *rangeSet) add(lo, hi uint64) {
	if hi <= lo {
		return
	}
	hiIncl := hi - 1
	out := rs.ranges[:0:0]
	inserted := false
	for _, r := range rs.ranges {
		switch {
		case r.Hi+1 < lo:
			out = append(out, r)
		case hiIncl+1 < r.Lo:
			if !inserted {
				out = append(out, ackRange{lo, hiIncl})
				inserted = true
			}
			out = append(out, r)
		default:
			// overlap or adjacency: merge
			if r.Lo < lo {
				lo = r.Lo
			}
			if r.Hi > hiIncl {
				hiIncl = r.Hi
			}
		}
	}
	if !inserted {
		out = append(out, ackRange{lo, hiIncl})
	}
	rs.ranges = out
}

// contiguous returns the length of the prefix starting at 0.
func (rs *rangeSet) contiguous() uint64 {
	if len(rs.ranges) == 0 || rs.ranges[0].Lo != 0 {
		return 0
	}
	return rs.ranges[0].Hi + 1
}

// descendingRanges returns up to n ranges, highest first (ACK frame form).
func (rs *rangeSet) descendingRanges(n int) []ackRange {
	out := make([]ackRange, 0, n)
	for i := len(rs.ranges) - 1; i >= 0 && len(out) < n; i-- {
		out = append(out, rs.ranges[i])
	}
	return out
}

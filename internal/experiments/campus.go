package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"time"

	"github.com/zhuge-project/zhuge/internal/scenario"
)

// CampusSharded runs the flagship campus workload — many APs, each serving
// a block of RTP video stations, with roamers crossing cell boundaries —
// once per shard count, and tabulates per-run aggregates. One topology is
// partitioned over 1, 2 and 4 shard simulators synchronized through the
// conservative window protocol; every metric column (and the fingerprint
// over all per-flow outputs) must be byte-identical across the rows. The
// golden fingerprint pins that contract: any grouping leak shows up as
// rows that no longer match each other.
//
// Scale shrinks the topology with the duration (4 APs / 40 stations at the
// golden Scale 0.02; 100 APs / 1000 stations at full scale), keeping the
// workload shape — contiguous station blocks, staggered flow starts,
// cross-cell roams — at every size.
func CampusSharded(cfg Config) *Table {
	cfg = cfg.withDefaults()
	dur := cfg.dur(30*time.Second, 2*time.Second)
	aps := int(100 * cfg.Scale)
	if aps < 4 {
		aps = 4
	}
	ccfg := scenario.CampusConfig{
		APs:      aps,
		Stations: 10 * aps,
		Roams:    aps,
		Duration: dur,
		Solution: scenario.SolutionZhuge,
	}

	t := &Table{
		ID:    "campus-sharded",
		Title: fmt.Sprintf("Campus workload (%d APs, %d stations): shard-count invariance", aps, 10*aps),
		Header: []string{"shards", "cells", "windows", "events",
			"decoded", "skipped", "delivered(MB)", "fingerprint"},
	}

	counts := []int{1, 2, 4}
	if cfg.Shards > 0 {
		counts = []int{cfg.Shards}
	}
	for _, shards := range counts {
		spd, err := scenario.BuildSharded(scenario.Campus(cfg.Seed, ccfg), scenario.ShardedOptions{
			Shards:   shards,
			CutDelay: scenario.CampusCutDelay,
		})
		if err != nil {
			panic(fmt.Sprintf("campus-sharded: %v", err))
		}
		workers := cfg.Workers
		if workers == 0 {
			workers = shards
		}
		spd.Run(dur, workers)

		var decoded, skipped int
		var delivered float64
		for _, c := range spd.Cells {
			for _, bf := range c.Path.Flows {
				if bf.RTP == nil {
					continue
				}
				decoded += bf.RTP.Decoder.Decoded
				skipped += bf.RTP.Decoder.Skipped
				delivered += bf.RTP.Metrics.DeliveredBytes
			}
		}
		sum := sha256.Sum256([]byte(spd.Fingerprint()))
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", shards),
			fmt.Sprintf("%d", len(spd.Cells)),
			fmt.Sprintf("%d", spd.Cluster.Windows()),
			fmt.Sprintf("%d", spd.Cluster.Fired()),
			fmt.Sprintf("%d", decoded),
			fmt.Sprintf("%d", skipped),
			fmt.Sprintf("%.2f", delivered/1e6),
			hex.EncodeToString(sum[:])[:12],
		})
	}
	return t
}

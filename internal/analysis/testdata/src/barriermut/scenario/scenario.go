// Package scenario is the barriermut fixture: a Path that spans the whole
// cluster (its Cluster field and cell collection reach every shard) may be
// wired at build time and mutated from Cluster.At barrier actions, but
// never from in-window code — scheduled simulator callbacks or datapath
// Receive handlers — where every shard is advancing concurrently.
package scenario

import (
	"github.com/zhuge-project/zhuge/internal/netem"
	"github.com/zhuge-project/zhuge/internal/shard"
	"github.com/zhuge-project/zhuge/internal/sim"
)

// Cell wraps a single cluster cell: one shard-reaching field, so it does
// not span.
type Cell struct {
	Cell *shard.Cell
	Seen int
}

// Path spans more than one shard: the cluster plus all its cells.
type Path struct {
	Cluster *shard.Cluster
	Cells   []*Cell
	Epoch   int
}

// Rebalance is itself window-reachable via badWindowMutation's scheduled
// call below, so its body write is flagged in addition to the call site.
func (p *Path) Rebalance() { p.Epoch++ } // want `write to a field of Path from in-window code`

// buildCluster wires everything before the cluster runs: build-time code
// is not in-window, so none of this is flagged.
func buildCluster(ss []*sim.Simulator) *Path {
	c := shard.NewCluster()
	p := &Path{Cluster: c}
	for i, s := range ss {
		sh := c.AddShard("shard")
		cl := c.AddCell("cell", s, sh)
		_ = i
		p.Cells = append(p.Cells, &Cell{Cell: cl})
	}
	p.Epoch = 1
	return p
}

// scheduleHandover is the legal mutation path: barrier actions run between
// windows, when no shard is advancing. Cell migration lives here too.
func scheduleHandover(p *Path, at sim.Time, to *shard.Shard) {
	p.Cluster.At(at, func() {
		p.Rebalance()
		p.Epoch++
		p.Cluster.Migrate(p.Cells[0].Cell, to)
	})
}

// badWindowMutation reaches spanning state from a scheduled (in-window)
// callback.
func badWindowMutation(s *sim.Simulator, p *Path) {
	s.Schedule(0, func() {
		p.Rebalance() // want `call to \(Path\)\.Rebalance from in-window code`
	})
}

func badWindowFieldWrite(s *sim.Simulator, p *Path) {
	s.Schedule(0, func() {
		p.Epoch = 3 // want `write to a field of Path from in-window code`
	})
}

// bumpEpoch launders the write through a helper; window reachability
// closes over resolved calls.
func bumpEpoch(p *Path) {
	p.Epoch++ // want `write to a field of Path from in-window code`
}

func badWindowViaHelper(s *sim.Simulator, p *Path) {
	s.Schedule(0, func() {
		bumpEpoch(p)
	})
}

// badWindowClusterAt registers a barrier action from in-window code: the
// control plane is build-time or barrier-time only.
func badWindowClusterAt(s *sim.Simulator, c *shard.Cluster) {
	s.Schedule(0, func() {
		c.At(0, func() {}) // want `\(\*shard\.Cluster\)\.At from in-window code`
	})
}

// badWindowMigrate re-homes a cell mid-window: migration is a barrier-only
// control-plane operation (it moves ring and heap ownership).
func badWindowMigrate(s *sim.Simulator, c *shard.Cluster, cl *shard.Cell, to *shard.Shard) {
	s.Schedule(0, func() {
		c.Migrate(cl, to) // want `\(\*shard\.Cluster\)\.Migrate from in-window code`
	})
}

// crossCellHook is a datapath Receive handler — in-window by definition —
// that grabs another cell's simulator.
type crossCellHook struct {
	other *shard.Cell
	n     int
}

func (h *crossCellHook) Receive(p *netem.Packet) {
	_ = h.other.Sim() // want `\(\*shard\.Cell\)\.Sim from in-window code`
	h.n++
}

// localHook only touches its own single-shard state: Cell-shaped wrappers
// do not span, so in-window mutation is fine.
type localHook struct{ n int }

func (h *localHook) Receive(p *netem.Packet) {
	h.n++
}

func suppressedWindowMutation(s *sim.Simulator, p *Path) {
	s.Schedule(0, func() {
		//lint:ignore barriermut fixture exercises suppressing the in-window report
		p.Epoch++
	})
}

// Package cca implements the congestion control algorithms the paper
// evaluates: CUBIC (the bulk-transfer competitor), Copa and BBR
// (latency-sensitive TCP CCAs), GCC (the WebRTC rate controller used over
// RTP/RTCP) and the sender half of ABC (the explicit network-host co-design
// baseline). All are sender-side: they consume acknowledgement/feedback
// events from the transports in internal/transport and emit either a
// congestion window (TCP family) or a target sending rate (GCC).
package cca

import (
	"time"

	"github.com/zhuge-project/zhuge/internal/sim"
)

// MSS is the maximum segment size used by the TCP family, in bytes.
const MSS = 1400

// AckEvent carries everything a TCP-family controller may consume on each
// cumulative acknowledgement.
type AckEvent struct {
	Now        sim.Time
	AckedBytes int           // newly acknowledged bytes
	RTT        time.Duration // RTT sample for this ack (0 when unavailable)
	InFlight   int           // bytes still in flight after this ack
	ABCMark    uint8         // ABC accelerate/brake mark echoed by receiver
	// AppLimited reports that the sender is not using its full window
	// (no backlog and in-flight below cwnd). Controllers must not grow
	// the window on app-limited ACKs (RFC 7661): an unused window says
	// nothing about the path, and growing it unboundedly would let a
	// long-idle flow dump a giant burst when the application ramps up.
	AppLimited bool
}

// TCP is the interface between the TCP transport and a window-based
// congestion controller.
type TCP interface {
	// Name identifies the algorithm in experiment tables.
	Name() string
	// OnAck processes one cumulative ACK.
	OnAck(ev AckEvent)
	// OnLoss processes a fast-retransmit loss event (triple dupack).
	OnLoss(now sim.Time)
	// OnRTO processes a retransmission timeout.
	OnRTO(now sim.Time)
	// CWND returns the congestion window in bytes.
	CWND() int
	// PacingRate returns the pacing rate in bits per second, or 0 to let
	// the transport default to cwnd-per-RTT ack clocking.
	PacingRate(now sim.Time) float64
}

// minCwnd is the floor every controller respects.
const minCwnd = 2 * MSS

func clampCwnd(w int) int {
	if w < minCwnd {
		return minCwnd
	}
	return w
}

package shard

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/zhuge-project/zhuge/internal/netem"
	"github.com/zhuge-project/zhuge/internal/sim"
)

func TestRingFIFOAndGrowth(t *testing.T) {
	var r ring
	const n = 4*ringCap + 100 // force several geometric growth steps
	for i := 0; i < n; i++ {
		r.push(Parcel{At: sim.Time(i)})
	}
	if got := r.pending(); got != n {
		t.Fatalf("pending = %d, want %d", got, n)
	}
	if len(r.buf) < n || len(r.buf)&(len(r.buf)-1) != 0 {
		t.Fatalf("buf grew to %d, want a power of two >= %d", len(r.buf), n)
	}
	var got []sim.Time
	r.drain(func(p Parcel) { got = append(got, p.At) })
	if len(got) != n {
		t.Fatalf("drained %d parcels, want %d", len(got), n)
	}
	for i, at := range got {
		if at != sim.Time(i) {
			t.Fatalf("parcel %d has At %d: FIFO order broken across growth", i, at)
		}
	}
	if r.pending() != 0 {
		t.Fatal("drain did not reset the ring")
	}
	// The ring must be reusable after a drain, at its grown capacity.
	r.push(Parcel{At: 42})
	r.drain(func(p Parcel) {
		if p.At != 42 {
			t.Fatalf("post-drain parcel At = %d, want 42", p.At)
		}
	})
}

// TestRingGrowthMidstream grows while head is far from zero, so the
// re-laying in grow has to translate wrapped positions correctly.
func TestRingGrowthMidstream(t *testing.T) {
	var r ring
	next := 0
	popped := 0
	push := func(n int) {
		for i := 0; i < n; i++ {
			r.push(Parcel{At: sim.Time(next)})
			next++
		}
	}
	drainAll := func() {
		r.drain(func(p Parcel) {
			if p.At != sim.Time(popped) {
				t.Fatalf("popped At %d, want %d", p.At, popped)
			}
			popped++
		})
	}
	push(ringCap - 3) // nearly fill
	drainAll()        // head == tail == ringCap-3: wrapped state
	push(3 * ringCap) // burst forces growth with nonzero head
	drainAll()
	if popped != next {
		t.Fatalf("popped %d of %d parcels", popped, next)
	}
}

// cellPair builds a two-shard cluster with one cell on each and a pair of
// cut edges, the canonical fixture for protocol tests.
func cellPair(t *testing.T) (c *Cluster, a, b *Cell, ab, ba *Edge) {
	t.Helper()
	c = NewCluster()
	sa := c.AddShard("sa")
	sb := c.AddShard("sb")
	a = c.AddCell("a", sim.New(1), sa)
	b = c.AddCell("b", sim.New(2), sb)
	var err error
	ab, err = c.Connect("a->b", a, b, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	ba, err = c.Connect("b->a", b, a, 3*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	return c, a, b, ab, ba
}

func TestZeroLookaheadRejected(t *testing.T) {
	c := NewCluster()
	a := c.AddCell("a", sim.New(1), c.AddShard("sa"))
	b := c.AddCell("b", sim.New(2), c.AddShard("sb"))
	for _, d := range []time.Duration{0, -time.Millisecond} {
		if _, err := c.Connect("cut", a, b, d); err == nil {
			t.Fatalf("Connect with delay %v succeeded, want error", d)
		} else if !strings.Contains(err.Error(), "lookahead") {
			t.Fatalf("error %q does not explain the lookahead requirement", err)
		}
	}
	if _, err := c.Connect("cut", a, b, time.Millisecond); err != nil {
		t.Fatalf("positive delay rejected: %v", err)
	}
	if l, ok := c.Lookahead(); !ok || l != time.Millisecond {
		t.Fatalf("Lookahead = %v, %v; want 1ms, true", l, ok)
	}
}

// exchange builds two single-cell shards ping-ponging packets over a pair
// of edges and returns the delivery log. Used both for protocol checks and
// for the worker-count determinism gate.
func exchange(t *testing.T, workers int) []string {
	t.Helper()
	c, a, b, ab, ba := cellPair(t)

	var log []string
	// b echoes every arrival straight back; a records the round trip.
	bIn := netem.ReceiverFunc(func(p *netem.Packet) {
		log = append(log, fmt.Sprintf("b got seq %d at %v", p.Seq, b.Sim().Now()))
		echo := netem.NewPacket()
		echo.Seq = p.Seq
		p.Release()
		var aIn netem.Receiver
		aIn = netem.ReceiverFunc(func(q *netem.Packet) {
			log = append(log, fmt.Sprintf("a got seq %d at %v", q.Seq, a.Sim().Now()))
			q.Release()
		})
		ba.Send(echo, aIn)
	})
	for i := 0; i < 10; i++ {
		seq := uint64(i)
		at := time.Duration(i) * time.Millisecond
		a.Sim().Schedule(at, func() {
			p := netem.NewPacket()
			p.Seq = seq
			ab.Send(p, bIn)
		})
	}
	// A barrier action at 7ms observing both clocks in lockstep.
	c.At(7*time.Millisecond, func() {
		log = append(log, fmt.Sprintf("action at a=%v b=%v", a.Sim().Now(), b.Sim().Now()))
	})
	// An event exactly at the horizon must still fire (RunUntil semantics).
	a.Sim().Schedule(30*time.Millisecond, func() { log = append(log, "horizon event") })

	c.Run(30*time.Millisecond, workers)
	if c.Windows() == 0 {
		t.Fatal("cluster granted no windows")
	}
	if c.Fired() == 0 {
		t.Fatal("no events fired")
	}
	return log
}

func TestClusterProtocol(t *testing.T) {
	log := exchange(t, 1)
	// 10 sends -> 10 b-arrivals at send+5ms, 10 a-echoes at +8ms, one
	// action line, one horizon line.
	if len(log) != 22 {
		t.Fatalf("log has %d lines, want 22:\n%s", len(log), strings.Join(log, "\n"))
	}
	var sawB, sawA int
	for _, l := range log {
		switch {
		case strings.HasPrefix(l, "b got seq"):
			want := fmt.Sprintf("b got seq %d at %v", sawB, time.Duration(sawB)*time.Millisecond+5*time.Millisecond)
			if l != want {
				t.Fatalf("line %q, want %q", l, want)
			}
			sawB++
		case strings.HasPrefix(l, "a got seq"):
			want := fmt.Sprintf("a got seq %d at %v", sawA, time.Duration(sawA)*time.Millisecond+8*time.Millisecond)
			if l != want {
				t.Fatalf("line %q, want %q", l, want)
			}
			sawA++
		case strings.HasPrefix(l, "action"):
			if l != "action at a=7ms b=7ms" {
				t.Fatalf("barrier action saw desynchronised clocks: %q", l)
			}
		}
	}
	if sawB != 10 || sawA != 10 {
		t.Fatalf("deliveries b=%d a=%d, want 10/10", sawB, sawA)
	}
	if log[len(log)-1] != "horizon event" {
		t.Fatalf("last line %q, want the horizon event", log[len(log)-1])
	}
}

// TestWorkerCountInvisible is the package-local determinism gate: the same
// cluster advanced by 1 worker and by 4 workers must produce an identical
// delivery log.
func TestWorkerCountInvisible(t *testing.T) {
	seq := exchange(t, 1)
	par := exchange(t, 4)
	if len(seq) != len(par) {
		t.Fatalf("log lengths differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("line %d differs:\n  1 worker:  %q\n  4 workers: %q", i, seq[i], par[i])
		}
	}
}

// TestEdgeBurstBeyondInitialCap drives far more than ringCap parcels down
// one edge inside a single window; every one must arrive, in order.
func TestEdgeBurstBeyondInitialCap(t *testing.T) {
	c, a, b, ab, _ := cellPair(t)
	_ = b
	const n = ringCap + 300
	var got []uint64
	bIn := netem.ReceiverFunc(func(p *netem.Packet) {
		got = append(got, p.Seq)
		p.Release()
	})
	// All sends at t=1ms: one event, n pushes, all inside one window.
	a.Sim().Schedule(time.Millisecond, func() {
		for i := 0; i < n; i++ {
			p := netem.NewPacket()
			p.Seq = uint64(i)
			ab.Send(p, bIn)
		}
	})
	c.Run(20*time.Millisecond, 2)
	if len(got) != n {
		t.Fatalf("delivered %d parcels, want %d", len(got), n)
	}
	for i, seq := range got {
		if seq != uint64(i) {
			t.Fatalf("parcel %d has seq %d: burst order broken", i, seq)
		}
	}
}

// TestMigrateMovesCellAtBarrier pins the migration mechanics: a cell moved
// at a barrier keeps firing its events (on the new shard), residency lists
// update, and the delivery log is byte-identical to the unmigrated run.
func TestMigrateMovesCellAtBarrier(t *testing.T) {
	run := func(migrate bool) ([]string, uint64) {
		c, a, b, ab, _ := cellPair(t)
		var log []string
		bIn := netem.ReceiverFunc(func(p *netem.Packet) {
			log = append(log, fmt.Sprintf("b got %d at %v", p.Seq, b.Sim().Now()))
			p.Release()
		})
		for i := 0; i < 10; i++ {
			seq := uint64(i)
			a.Sim().Schedule(time.Duration(i)*2*time.Millisecond, func() {
				p := netem.NewPacket()
				p.Seq = seq
				ab.Send(p, bIn)
			})
		}
		if migrate {
			sb := c.Shards()[1]
			c.At(9*time.Millisecond, func() { c.Migrate(a, sb) })
		}
		c.Run(40*time.Millisecond, 2)
		return log, c.Fired()
	}
	plain, firedPlain := run(false)
	moved, firedMoved := run(true)
	if len(plain) != 10 || len(moved) != 10 {
		t.Fatalf("deliveries %d/%d, want 10/10", len(plain), len(moved))
	}
	for i := range plain {
		if plain[i] != moved[i] {
			t.Fatalf("line %d differs under migration:\n  plain: %q\n  moved: %q", i, plain[i], moved[i])
		}
	}
	if firedPlain != firedMoved {
		t.Fatalf("event counts differ under migration: %d vs %d", firedPlain, firedMoved)
	}
}

func TestMigrateUpdatesResidency(t *testing.T) {
	c, a, _, _, _ := cellPair(t)
	sa, sb := c.Shards()[0], c.Shards()[1]
	if a.Shard() != sa || len(sa.Cells()) != 1 || len(sb.Cells()) != 1 {
		t.Fatal("initial residency wrong")
	}
	c.Migrate(a, sb)
	if a.Shard() != sb {
		t.Fatalf("cell a resides on %q, want sb", a.Shard().Name())
	}
	if len(sa.Cells()) != 0 || len(sb.Cells()) != 2 {
		t.Fatalf("residency lists sa=%d sb=%d, want 0/2", len(sa.Cells()), len(sb.Cells()))
	}
	c.Migrate(a, sb) // no-op
	if len(sb.Cells()) != 2 {
		t.Fatal("self-migration duplicated the cell")
	}
}

func TestMigrateInWindowPanics(t *testing.T) {
	c, a, _, _, _ := cellPair(t)
	sb := c.Shards()[1]
	defer func() {
		if recover() == nil {
			t.Fatal("Migrate from in-window code did not panic")
		}
	}()
	// A scheduled event runs inside a window: migrating there must trip
	// the runtime backstop (the shardown analyzer is the static gate).
	a.Sim().Schedule(time.Millisecond, func() { c.Migrate(a, sb) })
	c.Run(10*time.Millisecond, 1)
}
